(* pkbench — command-line front end for the experiment suite.

   Examples:
     pkbench list
     pkbench run f9a f10b --keys 500000 --lookups 20000
     pkbench run            # everything at default scale *)

open Cmdliner

let register_all () =
  Pk_experiments.Exp_tables.register ();
  Pk_experiments.Exp_figures.register ();
  Pk_experiments.Exp_ablations.register ()

let list_cmd =
  let run () =
    register_all ();
    List.iter
      (fun (e : Pk_harness.Experiment.t) ->
        Printf.printf "%-6s %-55s %s\n" e.Pk_harness.Experiment.id
          e.Pk_harness.Experiment.title e.Pk_harness.Experiment.paper_ref)
      (Pk_harness.Experiment.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments")
    Term.(const run $ const ())

let list_schemes_cmd =
  let run key_len =
    (* Self-registering scheme modules must be linked before the
       registry is enumerated. *)
    Pk_core.Hybrid.ensure_registered ();
    Pk_core.Variants.ensure_registered ();
    Printf.printf "%-14s %-9s %s\n" "tag" "structure" (Printf.sprintf "entry bytes (key_len=%d)" key_len);
    List.iter
      (fun (info : Pk_core.Index.Registry.info) ->
        Printf.printf "%-14s %-9s %s\n" info.Pk_core.Index.Registry.tag
          info.Pk_core.Index.Registry.structure
          (match info.Pk_core.Index.Registry.entry_bytes key_len with
          | Some b -> string_of_int b
          | None -> "variable"))
      (Pk_core.Index.Registry.all ())
  in
  let key_len_arg =
    Arg.(value & opt int 20 & info [ "key-len" ] ~docv:"N" ~doc:"Key length used to report per-entry sizes (default 20).")
  in
  Cmd.v
    (Cmd.info "list-schemes" ~doc:"List every registered index scheme with its structure and entry size")
    Term.(const run $ key_len_arg)

let keys_arg =
  Arg.(value & opt (some int) None & info [ "keys"; "k" ] ~docv:"N" ~doc:"Number of indexed keys (overrides the default; the paper used 1500000).")

let lookups_arg =
  Arg.(value & opt (some int) None & info [ "lookups"; "l" ] ~docv:"N" ~doc:"Number of measured lookups (the paper used 100000).")

let scale_arg =
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"X" ~doc:"Multiply default sizes by X.")

let batch_arg =
  Arg.(value & opt (some int) None & info [ "batch"; "b" ] ~docv:"N" ~doc:"Batched-lookup group size for a9 (replaces the default {1,8,64,512} sweep).")

let fill_arg =
  Arg.(value & opt (some float) None & info [ "fill" ] ~docv:"F" ~doc:"Bulk-load fill factor for a9, clamped to [0.5, 1.0] (default 1.0).")

let schemes_arg =
  Arg.(value & opt (some string) None & info [ "schemes" ] ~docv:"TAGS" ~doc:"Comma-separated registry scheme tags for a9 (see list-schemes; default: every registered scheme).")

let ids_arg = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the run, print the observability registry (Prometheus text exposition: \
           per-index deref/visit counters and per-op deref histograms) and write METRICS.json.")

let run_cmd =
  let run keys lookups scale batch fill schemes metrics ids =
    Option.iter (fun v -> Unix.putenv "PK_KEYS" (string_of_int v)) keys;
    Option.iter (fun v -> Unix.putenv "PK_LOOKUPS" (string_of_int v)) lookups;
    Option.iter (fun v -> Unix.putenv "PK_SCALE" (string_of_float v)) scale;
    Option.iter (fun v -> Unix.putenv "PK_BATCH" (string_of_int v)) batch;
    Option.iter (fun v -> Unix.putenv "PK_FILL" (string_of_float v)) fill;
    Option.iter (fun v -> Unix.putenv "PK_SCHEMES" v) schemes;
    (* Wall-clock runs measure the paper's layout story; keep the
       undo-journal byte copies out of the hot path. *)
    Pk_fault.Fault.set_unwind false;
    register_all ();
    Pk_harness.Experiment.run_ids ids;
    if metrics then begin
      print_newline ();
      print_string (Pk_obs.Obs.prometheus Pk_obs.Obs.Registry.default);
      Pk_harness.Metrics_out.write_metrics Pk_obs.Obs.Registry.default
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments (all tables/figures of the paper plus ablations)")
    Term.(
      const run $ keys_arg $ lookups_arg $ scale_arg $ batch_arg $ fill_arg $ schemes_arg
      $ metrics_arg $ ids_arg)

let () =
  let doc = "benchmarks for the pkT/pkB partial-key index reproduction (SIGMOD 2001)" in
  let info = Cmd.info "pkbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; list_schemes_cmd; run_cmd ]))
