(* pkbench — command-line front end for the experiment suite.

   Examples:
     pkbench list
     pkbench run f9a f10b --keys 500000 --lookups 20000
     pkbench run            # everything at default scale *)

open Cmdliner

let register_all () =
  Pk_experiments.Exp_tables.register ();
  Pk_experiments.Exp_figures.register ();
  Pk_experiments.Exp_ablations.register ()

let list_cmd =
  let run () =
    register_all ();
    List.iter
      (fun (e : Pk_harness.Experiment.t) ->
        Printf.printf "%-6s %-55s %s\n" e.Pk_harness.Experiment.id
          e.Pk_harness.Experiment.title e.Pk_harness.Experiment.paper_ref)
      (Pk_harness.Experiment.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments")
    Term.(const run $ const ())

let list_schemes_cmd =
  let run key_len =
    (* Self-registering scheme modules must be linked before the
       registry is enumerated. *)
    Pk_core.Hybrid.ensure_registered ();
    Pk_core.Variants.ensure_registered ();
    Printf.printf "%-14s %-9s %s\n" "tag" "structure" (Printf.sprintf "entry bytes (key_len=%d)" key_len);
    List.iter
      (fun (info : Pk_core.Index.Registry.info) ->
        Printf.printf "%-14s %-9s %s\n" info.Pk_core.Index.Registry.tag
          info.Pk_core.Index.Registry.structure
          (match info.Pk_core.Index.Registry.entry_bytes key_len with
          | Some b -> string_of_int b
          | None -> "variable"))
      (Pk_core.Index.Registry.all ())
  in
  let key_len_arg =
    Arg.(value & opt int 20 & info [ "key-len" ] ~docv:"N" ~doc:"Key length used to report per-entry sizes (default 20).")
  in
  Cmd.v
    (Cmd.info "list-schemes" ~doc:"List every registered index scheme with its structure and entry size")
    Term.(const run $ key_len_arg)

let keys_arg =
  Arg.(value & opt (some int) None & info [ "keys"; "k" ] ~docv:"N" ~doc:"Number of indexed keys (overrides the default; the paper used 1500000).")

let lookups_arg =
  Arg.(value & opt (some int) None & info [ "lookups"; "l" ] ~docv:"N" ~doc:"Number of measured lookups (the paper used 100000).")

let scale_arg =
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"X" ~doc:"Multiply default sizes by X.")

let batch_arg =
  Arg.(value & opt (some int) None & info [ "batch"; "b" ] ~docv:"N" ~doc:"Batched-lookup group size for a9 (replaces the default {1,8,64,512} sweep).")

let fill_arg =
  Arg.(value & opt (some float) None & info [ "fill" ] ~docv:"F" ~doc:"Bulk-load fill factor for a9, clamped to [0.5, 1.0] (default 1.0).")

let schemes_arg =
  Arg.(value & opt (some string) None & info [ "schemes" ] ~docv:"TAGS" ~doc:"Comma-separated registry scheme tags for a9 (see list-schemes; default: every registered scheme).")

let machine_arg =
  Arg.(value & opt (some string) None & info [ "machine" ] ~docv:"NAME" ~doc:"Simulated machine preset: ultra30 (default), ultra60, pentium3, pentium3e or modern (3-level hierarchy).  a10 sweeps its own preset list unless this is given.")

let ids_arg = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the run, print the observability registry (Prometheus text exposition: \
           per-index deref/visit counters and per-op deref histograms) and write METRICS.json.")

let run_cmd =
  let run keys lookups scale batch fill schemes machine metrics ids =
    Option.iter (fun v -> Unix.putenv "PK_KEYS" (string_of_int v)) keys;
    Option.iter (fun v -> Unix.putenv "PK_LOOKUPS" (string_of_int v)) lookups;
    Option.iter (fun v -> Unix.putenv "PK_SCALE" (string_of_float v)) scale;
    Option.iter (fun v -> Unix.putenv "PK_BATCH" (string_of_int v)) batch;
    Option.iter (fun v -> Unix.putenv "PK_FILL" (string_of_float v)) fill;
    Option.iter (fun v -> Unix.putenv "PK_SCHEMES" v) schemes;
    Option.iter (fun v -> Unix.putenv "PK_MACHINE" v) machine;
    (* Wall-clock runs measure the paper's layout story; keep the
       undo-journal byte copies out of the hot path. *)
    Pk_fault.Fault.set_unwind false;
    register_all ();
    Pk_harness.Experiment.run_ids ids;
    if metrics then begin
      print_newline ();
      print_string (Pk_obs.Obs.prometheus Pk_obs.Obs.Registry.default);
      Pk_harness.Metrics_out.write_metrics Pk_obs.Obs.Registry.default
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments (all tables/figures of the paper plus ablations)")
    Term.(
      const run $ keys_arg $ lookups_arg $ scale_arg $ batch_arg $ fill_arg $ schemes_arg
      $ machine_arg $ metrics_arg $ ids_arg)

(* {2 snapshot subcommand} — durability + snapshot-read workload:
   journaled bulk load, a pinned epoch probed at full speed while a
   writer thread streams batched inserts, then a kill-and-recover of
   the final journal. *)

module Journal = Pk_journal.Journal
module Index = Pk_core.Index
module Key = Pk_keys.Key
module Keygen = Pk_keys.Keygen
module Prng = Pk_util.Prng
module Record_store = Pk_records.Record_store
module Tables = Pk_util.Tables

let snapshot_cmd =
  let run tag keys key_len batches batch_size seconds journal_out metrics =
    Pk_core.Hybrid.ensure_registered ();
    Pk_core.Variants.ensure_registered ();
    Pk_fault.Fault.set_unwind false;
    let mem = Pk_mem.Mem.create () in
    let records = Record_store.create mem in
    let ix = Index.Registry.build ~key_len tag mem records in
    let journal = Journal.create () in
    let jx = Index.journaled journal records ix in
    let rng = Prng.create 1L in
    let pool = Keygen.uniform ~rng ~key_len ~alphabet:16 (keys + (batches * batch_size)) in
    let seed = Array.sub pool 0 keys in
    Array.sort Key.compare seed;
    let t0 = Unix.gettimeofday () in
    let entries =
      Array.map (fun k -> (k, Record_store.insert records ~key:k ~payload:Bytes.empty)) seed
    in
    jx.Index.of_sorted ~fill:1.0 entries;
    let load_s = Unix.gettimeofday () -. t0 in
    Printf.printf "index           %s\n" ix.Index.tag;
    Printf.printf "bulk load       %s keys in %.2fs (journaled)\n" (Tables.fmt_int keys) load_s;
    (* Pin the epoch, then race a writer thread against snapshot reads. *)
    let snap = ix.Index.snapshot () in
    let frozen_count = snap.Index.count () in
    let writer_done = Atomic.make false in
    let writer =
      Thread.create
        (fun () ->
          for b = 0 to batches - 1 do
            let fresh = Array.sub pool (keys + (b * batch_size)) batch_size in
            let rids =
              Array.map
                (fun k -> Record_store.insert records ~key:k ~payload:Bytes.empty)
                fresh
            in
            ignore (jx.Index.insert_batch fresh ~rids);
            Thread.yield ()
          done;
          Atomic.set writer_done true)
        ()
    in
    let m = 1024 in
    let probes = Array.init m (fun i -> seed.(i * 31 mod keys)) in
    let out = Array.make m (-1) in
    let sweeps = ref 0 in
    let t1 = Unix.gettimeofday () in
    let deadline = t1 +. seconds in
    while (not (Atomic.get writer_done)) || Unix.gettimeofday () < deadline do
      snap.Index.lookup_into probes out;
      incr sweeps;
      Thread.yield ()
    done;
    let read_s = Unix.gettimeofday () -. t1 in
    Thread.join writer;
    let n_reads = !sweeps * m in
    Printf.printf "snapshot reads  %s lookups in %.2fs (%s/s) against the pinned epoch\n"
      (Tables.fmt_int n_reads) read_s
      (Tables.fmt_int (int_of_float (float_of_int n_reads /. read_s)));
    Printf.printf "writer          %s keys in %d batches behind the snapshot\n"
      (Tables.fmt_int (batches * batch_size))
      batches;
    if snap.Index.count () <> frozen_count then failwith "snapshot diverged";
    Printf.printf "epoch           pinned at %s keys; live index now %s keys\n"
      (Tables.fmt_int frozen_count)
      (Tables.fmt_int (ix.Index.count ()));
    snap.Index.release ();
    Printf.printf "journal         %s, %s records, %d commits\n"
      (Tables.fmt_bytes (Journal.byte_size journal))
      (Tables.fmt_int (Journal.record_count journal))
      (Journal.commit_count journal);
    Option.iter
      (fun path ->
        Journal.save journal path;
        Printf.printf "journal saved   %s (inspect with: pkdump journal %s)\n" path path)
      journal_out;
    (* Kill-and-recover from the journal bytes alone. *)
    let t2 = Unix.gettimeofday () in
    let frozen = Journal.of_bytes (Journal.to_bytes journal) in
    let _mem2, _records2, recovered, st = Index.recover ~key_len ~tag frozen in
    let rec_s = Unix.gettimeofday () -. t2 in
    Printf.printf
      "recovery        %s keys in %.2fs: %d batches, %d ops (%d bulk + %d tail), %d \
       uncommitted skipped\n"
      (Tables.fmt_int (recovered.Index.count ()))
      rec_s st.Pk_core.Engine.rec_batches st.Pk_core.Engine.rec_ops
      st.Pk_core.Engine.rec_bulk st.Pk_core.Engine.rec_tail st.Pk_core.Engine.rec_skipped;
    if recovered.Index.count () <> ix.Index.count () then failwith "recovery diverged";
    if metrics then begin
      print_newline ();
      print_string (Pk_obs.Obs.prometheus Pk_obs.Obs.Registry.default);
      Pk_harness.Metrics_out.write_metrics Pk_obs.Obs.Registry.default
    end
  in
  let tag_arg =
    Arg.(value & opt string "pkB" & info [ "tag" ] ~docv:"TAG" ~doc:"Registry scheme tag (see list-schemes).")
  in
  let keys_arg =
    Arg.(value & opt int 200_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Bulk-loaded keys.")
  in
  let key_len_arg =
    Arg.(value & opt int 12 & info [ "key-len" ] ~docv:"B" ~doc:"Key length in bytes.")
  in
  let batches_arg =
    Arg.(value & opt int 64 & info [ "batches" ] ~docv:"N" ~doc:"Writer-thread insert batches.")
  in
  let batch_size_arg =
    Arg.(value & opt int 512 & info [ "batch" ] ~docv:"N" ~doc:"Keys per writer batch.")
  in
  let seconds_arg =
    Arg.(value & opt float 1.0 & info [ "seconds" ] ~docv:"S" ~doc:"Minimum snapshot-read measurement window.")
  in
  let journal_out_arg =
    Arg.(value & opt (some string) None & info [ "journal-out" ] ~docv:"FILE" ~doc:"Save the journal for pkdump inspection.")
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "journaled load, snapshot reads against a writer thread, then kill-and-recover from \
          the journal")
    Term.(
      const run $ tag_arg $ keys_arg $ key_len_arg $ batches_arg $ batch_size_arg
      $ seconds_arg $ journal_out_arg $ metrics_arg)

(* {2 rebuild subcommand} — the rebuild-at-scale pipeline end to end:
   grow an index incrementally (optionally churn it ragged), extract +
   parallel-sort + gapped-load it into a fresh index, and measure the
   post-rebuild insert throughput the gap buys. *)

module Rebuild = Pk_rebuild.Rebuild

let shuffled_copy rng pool n =
  let c = Array.sub pool 0 n in
  Keygen.shuffle ~rng c;
  c

let rebuild_cmd =
  let run tag keys key_len domains gap churn =
    Pk_core.Hybrid.ensure_registered ();
    Pk_core.Variants.ensure_registered ();
    Pk_shard.Shard.ensure_registered ();
    Pk_fault.Fault.set_unwind false;
    let mem = Pk_mem.Mem.create () in
    let records = Record_store.create mem in
    let src = Index.Registry.build ~key_len tag mem records in
    let rng = Prng.create 1L in
    let tail_n = max 1 (keys / 20) in
    let pool = Keygen.uniform ~rng ~key_len ~alphabet:16 (keys + tail_n) in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun k ->
        let rid = Record_store.insert records ~key:k ~payload:Bytes.empty in
        if not (src.Index.insert k ~rid) then Record_store.delete records rid)
      (Array.sub pool 0 keys);
    let grow_s = Unix.gettimeofday () -. t0 in
    let n0 = src.Index.count () in
    Printf.printf "source          %s: %s keys grown incrementally in %.2fs (%s nodes)\n"
      src.Index.tag (Tables.fmt_int n0) grow_s
      (Tables.fmt_int (src.Index.node_count ()));
    if churn > 0.0 then begin
      let victims = int_of_float (float_of_int n0 *. min 0.9 churn) in
      Array.iter
        (fun k -> ignore (src.Index.delete k : bool))
        (Array.sub (shuffled_copy rng pool keys) 0 victims);
      Printf.printf "churn           deleted %s keys; %s remain (nodes still %s)\n"
        (Tables.fmt_int victims)
        (Tables.fmt_int (src.Index.count ()))
        (Tables.fmt_int (src.Index.node_count ()))
    end;
    (* The pipeline: extract once, then sort at 1 domain and at the
       requested fan-out (stage timings, same input). *)
    let entries = Rebuild.extract (Rebuild.Of_index src) in
    let time_sort d =
      let t = Unix.gettimeofday () in
      let _, stats = Rebuild.sort ~domains:d ~store:records entries in
      (Unix.gettimeofday () -. t, stats)
    in
    let seq_s, _ = time_sort 1 in
    let par_s, stats = time_sort domains in
    Printf.printf
      "sort            %s entries: %.3fs at 1 domain, %.3fs at %d domains (%d runs, %s tie \
       derefs)\n"
      (Tables.fmt_int (Array.length entries))
      seq_s par_s domains stats.Rebuild.runs
      (Tables.fmt_int stats.Rebuild.tie_derefs);
    let dst = Index.Registry.build ~key_len tag mem records in
    let t1 = Unix.gettimeofday () in
    let _ = Rebuild.rebuild ~domains ~gap ~store:records ~into:dst (Rebuild.Of_index src) in
    let rebuild_s = Unix.gettimeofday () -. t1 in
    Printf.printf "rebuild         %.3fs end to end at gap %.2f: %s -> %s nodes\n" rebuild_s gap
      (Tables.fmt_int (src.Index.node_count ()))
      (Tables.fmt_int (dst.Index.node_count ()));
    dst.Index.validate ();
    (* What the gap buys: a fresh-key insert tail into the rebuilt
       tree, timed. *)
    let tail = Array.sub pool keys tail_n in
    let t2 = Unix.gettimeofday () in
    Array.iter
      (fun k ->
        let rid = Record_store.insert records ~key:k ~payload:Bytes.empty in
        if not (dst.Index.insert k ~rid) then Record_store.delete records rid)
      tail;
    let tail_s = Unix.gettimeofday () -. t2 in
    Printf.printf "insert tail     %s fresh keys in %.3fs (%s/s) after the gapped load\n"
      (Tables.fmt_int tail_n) tail_s
      (Tables.fmt_int (int_of_float (float_of_int tail_n /. tail_s)));
    (* And compaction closes the loop in place. *)
    let t3 = Unix.gettimeofday () in
    dst.Index.compact ~gap ();
    let compact_s = Unix.gettimeofday () -. t3 in
    dst.Index.validate ();
    Printf.printf "compact         in place in %.3fs; %s keys, %s nodes\n" compact_s
      (Tables.fmt_int (dst.Index.count ()))
      (Tables.fmt_int (dst.Index.node_count ()))
  in
  let tag_arg =
    Arg.(value & opt string "pkB" & info [ "tag" ] ~docv:"TAG" ~doc:"Registry scheme tag (see list-schemes).")
  in
  let keys_arg =
    Arg.(value & opt int 200_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Keys grown into the source index.")
  in
  let key_len_arg =
    Arg.(value & opt int 12 & info [ "key-len" ] ~docv:"B" ~doc:"Key length in bytes.")
  in
  let domains_arg =
    Arg.(value & opt int 4 & info [ "domains"; "d" ] ~docv:"N" ~doc:"Sorting domains for the parallel stage.")
  in
  let gap_arg =
    Arg.(value & opt float 0.1 & info [ "gap" ] ~docv:"G" ~doc:"Per-leaf gap fraction of the bulk load, clamped to [0, 0.5] (default 0.1).")
  in
  let churn_arg =
    Arg.(value & opt float 0.0 & info [ "churn" ] ~docv:"F" ~doc:"Delete this fraction of the source keys before rebuilding (default 0: none).")
  in
  Cmd.v
    (Cmd.info "rebuild"
       ~doc:
         "rebuild-at-scale pipeline: extract, parallel compressed-key sort, gapped bulk load, \
          post-load insert tail and in-place compaction")
    Term.(
      const run $ tag_arg $ keys_arg $ key_len_arg $ domains_arg $ gap_arg $ churn_arg)

let () =
  let doc = "benchmarks for the pkT/pkB partial-key index reproduction (SIGMOD 2001)" in
  let info = Cmd.info "pkbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; list_schemes_cmd; run_cmd; snapshot_cmd; rebuild_cmd ]))
