(* pkdump — build an index from command-line parameters and report its
   structure, space and lookup cache behaviour.  Handy for exploring a
   configuration before committing to a benchmark run.

   Example:
     pkdump --structure b --scheme pk-byte-2 --keys 100000 --key-len 20 \
            --entropy 3.6 --machine ultra30 *)

open Cmdliner
module Machine = Pk_cachesim.Machine
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Partial_key = Pk_partialkey.Partial_key
module Workload = Pk_workload.Workload
module Keygen = Pk_keys.Keygen
module Tables = Pk_util.Tables

let parse_scheme s ~key_len =
  match String.lowercase_ascii s with
  | "direct" -> Ok (Layout.Direct { key_len })
  | "indirect" -> Ok Layout.Indirect
  | s -> (
      (* pk-<granularity>-<l>  e.g. pk-byte-2, pk-bit-0 *)
      match String.split_on_char '-' s with
      | [ "pk"; g; l ] -> (
          match (g, int_of_string_opt l) with
          | "byte", Some l when l >= 0 ->
              Ok (Layout.Partial { granularity = Partial_key.Byte; l_bytes = l })
          | "bit", Some l when l >= 0 ->
              Ok (Layout.Partial { granularity = Partial_key.Bit; l_bytes = l })
          | _ -> Error (`Msg "scheme: expected pk-(bit|byte)-<l>"))
      | _ -> Error (`Msg "scheme: expected direct | indirect | pk-(bit|byte)-<l>"))

let run structure scheme keys key_len entropy machine node_blocks lookups validate =
  let machine =
    match Machine.by_name machine with
    | Some m -> m
    | None -> failwith ("unknown machine " ^ machine)
  in
  let structure =
    match String.lowercase_ascii structure with
    | "b" | "btree" | "b-tree" -> Index.B_tree
    | "t" | "ttree" | "t-tree" -> Index.T_tree
    | s -> failwith ("unknown structure " ^ s)
  in
  let scheme =
    match parse_scheme scheme ~key_len with Ok s -> s | Error (`Msg m) -> failwith m
  in
  let alphabet = Keygen.alphabet_for_entropy entropy in
  let env = Workload.make_env ~machine () in
  let ds = Workload.make_dataset env ~key_len ~alphabet ~n:keys () in
  let ix =
    Index.make ~node_bytes:(node_blocks * machine.Machine.l2.Pk_cachesim.Cachesim.block_bytes)
      structure scheme env.Workload.mem env.Workload.records
  in
  let t0 = Unix.gettimeofday () in
  Workload.load ds ix;
  let load_s = Unix.gettimeofday () -. t0 in
  if validate then ix.Index.validate ();
  let warm = Workload.probes ds ~seed:11 ~n:(min 3000 keys) () in
  let all = Workload.probes ds ~seed:12 ~n:(3000 + lookups) () in
  let probes = Array.sub all (min 3000 keys) lookups in
  let cs = Workload.measure_cache env ix ~warm ~probes in
  let wall = Workload.wall_ns_per_op env ix ~probes in
  Printf.printf "index           %s\n" ix.Index.tag;
  Printf.printf "machine         %s\n" machine.Machine.machine_name;
  Printf.printf "keys            %s of %d bytes (entropy %.2f bits/byte)\n"
    (Tables.fmt_int keys) key_len
    (Keygen.entropy_of_alphabet alphabet);
  Printf.printf "build           %.2fs (%s keys/s)\n" load_s
    (Tables.fmt_int (int_of_float (float_of_int keys /. load_s)));
  Printf.printf "height          %d\n" (ix.Index.height ());
  Printf.printf "nodes           %s (%d-byte nodes)\n"
    (Tables.fmt_int (ix.Index.node_count ()))
    (node_blocks * machine.Machine.l2.Pk_cachesim.Cachesim.block_bytes);
  Printf.printf "index space     %s (%.1f bytes/key)\n"
    (Tables.fmt_bytes (ix.Index.space_bytes ()))
    (float_of_int (ix.Index.space_bytes ()) /. float_of_int keys);
  Printf.printf "record space    %s\n"
    (Tables.fmt_bytes (Pk_records.Record_store.live_bytes env.Workload.records));
  Printf.printf "lookup          %.0f ns/op wall, %.2f L2 miss/op, %.2f L1 miss/op\n" wall
    cs.Workload.l2_per_op cs.Workload.l1_per_op;
  Printf.printf "                %.3f record derefs/op, %.2f node visits/op, %.2f us/op simulated\n"
    cs.Workload.derefs_per_op cs.Workload.visits_per_op
    (cs.Workload.sim_ns_per_op /. 1000.0);
  if validate then Printf.printf "validate        ok\n"

(* {2 trace subcommand} — build a small index, flip its ring buffer on
   and pretty-print the descent of each probe. *)

module Obs = Pk_obs.Obs

let run_trace structure scheme keys key_len entropy node_bytes probes capacity =
  let structure =
    match String.lowercase_ascii structure with
    | "b" | "btree" | "b-tree" -> Index.B_tree
    | "t" | "ttree" | "t-tree" -> Index.T_tree
    | s -> failwith ("unknown structure " ^ s)
  in
  let scheme =
    match parse_scheme scheme ~key_len with Ok s -> s | Error (`Msg m) -> failwith m
  in
  let alphabet = Keygen.alphabet_for_entropy entropy in
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len ~alphabet ~n:keys () in
  let ix = Index.make ~node_bytes structure scheme env.Workload.mem env.Workload.records in
  Workload.load ds ix;
  Printf.printf "index  %s: %d keys, height %d, %d nodes; ring capacity %d\n" ix.Index.tag keys
    (ix.Index.height ()) (ix.Index.node_count ()) capacity;
  Obs.Trace.enable ~capacity ix.Index.trace;
  let ps = Workload.probes ds ~seed:5 ~n:probes () in
  Array.iter
    (fun k ->
      let rid = ix.Index.lookup k in
      Printf.printf "\nlookup %s -> %s\n" (Pk_keys.Key.to_hex k)
        (match rid with Some r -> "rid " ^ string_of_int r | None -> "absent");
      let events, dropped = Obs.Trace.drain ix.Index.trace in
      if dropped > 0 then Printf.printf "  ... %d events dropped (ring lapped)\n" dropped;
      List.iter (fun e -> Printf.printf "  %s\n" (Obs.Trace.event_to_string e)) events)
    ps

(* {2 layout subcommand} — bulk load a registered scheme and report
   where the placement plan put every node: per-level block residency
   (distinct pages and hugepages actually touched vs the contiguous
   ideal) plus the plan's extent and padding. *)

let run_layout tag keys key_len entropy fill =
  Pk_core.Hybrid.ensure_registered ();
  Pk_core.Variants.ensure_registered ();
  let alphabet = Keygen.alphabet_for_entropy entropy in
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len ~alphabet ~n:keys () in
  let ix = Index.Registry.build ~key_len tag env.Workload.mem env.Workload.records in
  ix.Index.of_sorted ~fill (Workload.sorted_pairs ds);
  Printf.printf "index   %s: %s keys, height %d, %s nodes\n" ix.Index.tag (Tables.fmt_int keys)
    (ix.Index.height ())
    (Tables.fmt_int (ix.Index.node_count ()));
  match ix.Index.layout () with
  | None -> print_endline "layout  no placement plan recorded (index was not bulk loaded)"
  | Some p when Layout.Placement.is_flat p ->
      print_endline
        "layout  flat: the bulk load bump-allocated level by level; no planned offsets\n\
        \        (build with a *-blocked registry tag for a placement plan)"
  | Some p ->
      let nb = Layout.Placement.node_bytes p in
      let line, page, huge =
        match Layout.Placement.block_sizes p with Some s -> s | None -> assert false
      in
      Printf.printf "layout  blocked: %d B lines, %s pages, %s hugepages; extent %s, padding %s\n"
        line (Tables.fmt_bytes page) (Tables.fmt_bytes huge)
        (Tables.fmt_bytes (Layout.Placement.extent p))
        (Tables.fmt_bytes (Layout.Placement.padding p));
      let t =
        Tables.create
          ~columns:
            [
              ("level", Tables.Right);
              ("nodes", Tables.Right);
              ("bytes", Tables.Right);
              ("8K pages", Tables.Right);
              ("ideal", Tables.Right);
              ("2M blocks", Tables.Right);
            ]
      in
      for level = 0 to Layout.Placement.level_count p - 1 do
        let n = Layout.Placement.nodes_at p ~level in
        let pages = Hashtbl.create 64 and huges = Hashtbl.create 8 in
        for i = 0 to n - 1 do
          match Layout.Placement.offset p ~level ~index:i with
          | None -> ()
          | Some off ->
              (* A node can straddle two blocks; count both. *)
              Hashtbl.replace pages (off / page) ();
              Hashtbl.replace pages ((off + nb - 1) / page) ();
              Hashtbl.replace huges (off / huge) ();
              Hashtbl.replace huges ((off + nb - 1) / huge) ()
        done;
        Tables.add_row t
          [
            string_of_int level;
            Tables.fmt_int n;
            Tables.fmt_bytes (n * nb);
            Tables.fmt_int (Hashtbl.length pages);
            Tables.fmt_int (((n * nb) + page - 1) / page);
            Tables.fmt_int (Hashtbl.length huges);
          ]
      done;
      Tables.print t;
      print_endline
        "        (levels interleave: a level touching more pages than its contiguous ideal\n\
        \        is the banding at work — its nodes sit next to their parents instead)"

(* {2 journal subcommand} — raw view of a write-ahead operation
   journal: per-record framing plus the committed/uncommitted split
   recovery would apply. *)

module Journal = Pk_journal.Journal

let run_journal path limit =
  let j = Journal.load path in
  let committed = Journal.committed_batches j in
  let in_committed b = List.mem b committed in
  Printf.printf "journal  %s: %s, %d records, %d commits, last batch %d\n" path
    (Tables.fmt_bytes (Journal.byte_size j))
    (Journal.record_count j) (Journal.commit_count j) (Journal.last_batch j);
  let uncommitted = ref 0 in
  Journal.iter_records j (fun ~off:_ ~batch op ->
      match op with
      | Some _ when not (in_committed batch) -> incr uncommitted
      | _ -> ());
  Printf.printf "         committed batches: %s; %d uncommitted records (discarded on replay)\n"
    (String.concat "," (List.map string_of_int committed))
    !uncommitted;
  let shown = ref 0 in
  Journal.iter_records j (fun ~off ~batch op ->
      if !shown < limit then begin
        incr shown;
        let mark = if in_committed batch then ' ' else '!' in
        match op with
        | None -> Printf.printf "%08x  batch %-5d commit\n" off batch
        | Some (Journal.Insert { key; payload }) ->
            Printf.printf "%08x %cbatch %-5d insert %s  payload %db\n" off mark batch
              (Pk_keys.Key.to_hex key) (Bytes.length payload)
        | Some (Journal.Delete { key }) ->
            Printf.printf "%08x %cbatch %-5d delete %s\n" off mark batch
              (Pk_keys.Key.to_hex key)
      end);
  if Journal.record_count j + Journal.commit_count j > limit then
    Printf.printf "         ... %d more records (raise --limit)\n"
      (Journal.record_count j + Journal.commit_count j - limit)

let () =
  let structure =
    Arg.(value & opt string "b" & info [ "structure"; "s" ] ~docv:"b|t" ~doc:"Tree structure.")
  in
  let scheme =
    Arg.(
      value
      & opt string "pk-byte-2"
      & info [ "scheme" ] ~docv:"S" ~doc:"Key storage: direct, indirect, or pk-(bit|byte)-<l>.")
  in
  let keys = Arg.(value & opt int 100_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Indexed keys.") in
  let key_len = Arg.(value & opt int 20 & info [ "key-len" ] ~docv:"B" ~doc:"Key length in bytes.") in
  let entropy =
    Arg.(value & opt float 3.6 & info [ "entropy" ] ~docv:"H" ~doc:"Bits of entropy per key byte.")
  in
  let machine =
    Arg.(value & opt string "ultra30" & info [ "machine" ] ~docv:"M" ~doc:"Simulated machine (Table 2).")
  in
  let node_blocks =
    Arg.(value & opt int 3 & info [ "node-blocks" ] ~docv:"N" ~doc:"Node size in L2 blocks.")
  in
  let lookups = Arg.(value & opt int 8000 & info [ "lookups" ] ~docv:"N" ~doc:"Measured lookups.") in
  let validate = Arg.(value & flag & info [ "validate" ] ~doc:"Run the full invariant checker.") in
  let term =
    Term.(
      const run $ structure $ scheme $ keys $ key_len $ entropy $ machine $ node_blocks $ lookups
      $ validate)
  in
  let trace_cmd =
    let trace_keys =
      Arg.(value & opt int 1_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Indexed keys.")
    in
    let node_bytes =
      Arg.(value & opt int 192 & info [ "node-bytes" ] ~docv:"B" ~doc:"Node size in bytes.")
    in
    let probes =
      Arg.(value & opt int 3 & info [ "probes" ] ~docv:"N" ~doc:"Lookups to trace.")
    in
    let capacity =
      Arg.(value & opt int 1024 & info [ "capacity" ] ~docv:"N" ~doc:"Trace ring capacity (rounded up to a power of two).")
    in
    Cmd.v
      (Cmd.info "trace"
         ~doc:
           "build a small index, enable its descent trace ring and pretty-print each probe's \
            events (visits, partial-key outcomes, dereferences, routes)")
      Term.(
        const run_trace $ structure $ scheme $ trace_keys $ key_len $ entropy $ node_bytes $ probes
        $ capacity)
  in
  let layout_cmd =
    let tag =
      Arg.(value & opt string "pkB-blocked" & info [ "tag" ] ~docv:"TAG" ~doc:"Registry scheme tag (see pkbench list-schemes); *-blocked tags carry a placement plan.")
    in
    let layout_keys =
      Arg.(value & opt int 100_000 & info [ "keys"; "k" ] ~docv:"N" ~doc:"Bulk-loaded keys.")
    in
    let fill =
      Arg.(value & opt float 1.0 & info [ "fill" ] ~docv:"F" ~doc:"Bulk-load fill factor, clamped to [0.5, 1.0].")
    in
    Cmd.v
      (Cmd.info "layout"
         ~doc:
           "bulk load one registered scheme and print its node-placement plan: per-level page \
            and hugepage residency against the contiguous ideal")
      Term.(const run_layout $ tag $ layout_keys $ key_len $ entropy $ fill)
  in
  let journal_cmd =
    let path =
      Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Journal file (pkbench snapshot --journal-out).")
    in
    let limit =
      Arg.(value & opt int 64 & info [ "limit" ] ~docv:"N" ~doc:"Records to print (default 64).")
    in
    Cmd.v
      (Cmd.info "journal"
         ~doc:
           "print a write-ahead operation journal record by record, marking uncommitted \
            records recovery would discard")
      Term.(const run_journal $ path $ limit)
  in
  let info =
    Cmd.info "pkdump" ~version:"1.0.0"
      ~doc:"build one partial-key (or baseline) index and report structure and cache behaviour"
  in
  exit (Cmd.eval (Cmd.group ~default:term info [ trace_cmd; layout_cmd; journal_cmd ]))
