(* pklint — static invariant analyzer for the partial-key index repo.

   Analyses the typed ASTs (.cmt) the dune build already produces and
   enforces the hot-path, fault-safety and locking contracts: see
   DESIGN.md §11 for the rule catalogue, the annotation vocabulary
   ([@pklint.hot] / [@pklint.cold] / [@pklint.guarded] /
   [@pklint.allow "rule-id"]) and the baseline workflow.

   Usage: pklint [--json] [--sarif] [--baseline FILE] [--update-baseline]
                 [--root DIR] [--rules id,id,...] [ROOTS...]

   Default roots: lib bin examples.  Exit status: 0 clean, 1 findings
   (or stale baseline entries), 2 usage error. *)

module Lint = Pk_lint

let () =
  let json = ref false in
  let sarif = ref false in
  let baseline_file = ref "" in
  let update = ref false in
  let root = ref "" in
  let rules_arg = ref "" in
  let roots = ref [] in
  let usage = "pklint [options] [roots...]  (default roots: lib bin examples)" in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as JSON");
      ("--sarif", Arg.Set sarif, " emit findings as SARIF 2.1.0 (GitHub code scanning)");
      ("--baseline", Arg.Set_string baseline_file, "FILE subtract grandfathered findings");
      ("--update-baseline", Arg.Set update, " rewrite the baseline file with current findings");
      ("--root", Arg.Set_string root, "DIR chdir before analysing (repo or _build/default)");
      ( "--rules",
        Arg.Set_string rules_arg,
        "IDS comma-separated rule subset (default: all registered rules)" );
    ]
  in
  (try Arg.parse spec (fun r -> roots := r :: !roots) usage
   with _ -> exit 2);
  if String.length !root > 0 then Sys.chdir !root;
  let roots = match List.rev !roots with [] -> [ "lib"; "bin"; "examples" ] | rs -> rs in
  let rules =
    if String.length !rules_arg = 0 then Lint.Registry.default_rules
    else
      List.map
        (fun id ->
          match Lint.Registry.find_rule id with
          | Some r -> r
          | None ->
              Printf.eprintf "pklint: unknown rule %S (known: %s)\n" id
                (String.concat ", " Lint.Registry.rule_ids);
              exit 2)
        (String.split_on_char ',' !rules_arg)
  in
  let baseline =
    if String.length !baseline_file = 0 then [] else Lint.Baseline.load !baseline_file
  in
  let o = Lint.Driver.analyse ~rules ~baseline roots in
  if o.Lint.Driver.units = 0 then begin
    Printf.eprintf
      "pklint: no compilation units found under %s — run `dune build` first (or pass --root)\n"
      (String.concat " " roots);
    exit 2
  end;
  if !update then begin
    if String.length !baseline_file = 0 then begin
      Printf.eprintf "pklint: --update-baseline requires --baseline FILE\n";
      exit 2
    end;
    Lint.Baseline.save !baseline_file (o.Lint.Driver.findings @ o.Lint.Driver.baselined);
    Printf.printf "pklint: baseline %s rewritten (%d entries)\n" !baseline_file
      (List.length o.Lint.Driver.findings + List.length o.Lint.Driver.baselined)
  end
  else begin
    if !sarif then Lint.Driver.render_sarif Format.std_formatter o
    else if !json then Lint.Driver.render_json Format.std_formatter o
    else Lint.Driver.render_human Format.std_formatter o;
    if List.length o.Lint.Driver.findings > 0 || List.length o.Lint.Driver.stale > 0 then exit 1
  end
