(* Command-line chaos runner: seeded random op schedules against every
   index configuration, cross-checked against a Map oracle, optionally
   with fault injection.  Exits non-zero on the first divergence,
   printing the replay seed.  CI runs a short fixed-seed pass. *)

module Chaos = Pk_chaos.Chaos

let () =
  let seeds = ref 50 in
  let base = ref 1 in
  let ops = ref 120 in
  let faults = ref true in
  let alphabet = ref 0 in
  let trees = ref "" in
  let spec =
    [
      ("-seeds", Arg.Set_int seeds, "N  number of seeds per tree (default 50)");
      ("-base", Arg.Set_int base, "N  first seed (default 1)");
      ("-ops", Arg.Set_int ops, "N  operations per schedule (default 120)");
      ("-no-faults", Arg.Clear faults, "  pure differential mode, no injection");
      ("-alphabet", Arg.Set_int alphabet, "N  fix the per-byte alphabet (default seed-derived)");
      ( "-trees",
        Arg.Set_string trees,
        "LIST  comma-separated subset of T,B,pkT,pkB,prefix (default all)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "chaos_main [options]: differential chaos testing of the index structures";
  let trees =
    if !trees = "" then Chaos.all_trees
    else
      try List.map Chaos.tree_of_tag (String.split_on_char ',' !trees)
      with Invalid_argument msg ->
        Printf.eprintf "chaos_main: %s\n" msg;
        exit 2
  in
  let seed_list = List.init !seeds (fun i -> !base + i) in
  let plan = if !faults then fun ~seed -> Chaos.default_fault_plan ~seed else fun ~seed:_ -> [] in
  let alphabet = if !alphabet = 0 then None else Some !alphabet in
  match Chaos.run_suite ~faults:plan ?alphabet ~trees ~seeds:seed_list ~ops:!ops () with
  | o ->
      Printf.printf "chaos: %d schedules, %d ops, %d applied, %d injected, %d validations — all consistent\n"
        (List.length seed_list * List.length trees)
        o.Chaos.ops o.Chaos.applied o.Chaos.injected o.Chaos.validations
  | exception Failure msg ->
      prerr_endline msg;
      (* The schedule's descent trail was already dumped by the harness;
         attach the metrics snapshot so the counterexample arrives with
         its counters. *)
      prerr_endline "chaos: metrics at failure:";
      prerr_string (Pk_obs.Obs.prometheus Pk_obs.Obs.Registry.default);
      exit 1
