(* Command-line chaos runner: seeded random op schedules against every
   index configuration, cross-checked against a Map oracle, optionally
   with fault injection.  Schedules run one by one so a divergence
   never hides the rest of the matrix: every failure is reported with
   its replay seed, and the exit status is non-zero if ANY schedule
   failed.  CI runs a short fixed-seed classic pass and a 1000-schedule
   kill-and-recover pass ([-kind recover], or PK_CHAOS_KIND=recover). *)

module Chaos = Pk_chaos.Chaos

type schedule_kind = Classic | Recover | Rebuild | Parallel

let kind_of_string = function
  | "classic" -> Classic
  | "recover" -> Recover
  | "rebuild" -> Rebuild
  | "parallel" -> Parallel
  | s ->
      invalid_arg
        (Printf.sprintf "unknown schedule kind %S; valid kinds: classic, recover, rebuild, parallel"
           s)

let () =
  let seeds = ref 50 in
  let base = ref 1 in
  let ops = ref 120 in
  let faults = ref true in
  let alphabet = ref 0 in
  let trees = ref "" in
  let kind =
    ref (match Sys.getenv_opt "PK_CHAOS_KIND" with Some k -> k | None -> "classic")
  in
  let readers = ref 2 in
  let shards = ref 4 in
  let spec =
    [
      ("-seeds", Arg.Set_int seeds, "N  number of seeds per tree (default 50)");
      ("-base", Arg.Set_int base, "N  first seed (default 1)");
      ("-ops", Arg.Set_int ops, "N  operations per schedule (default 120)");
      ("-no-faults", Arg.Clear faults, "  pure differential mode, no injection");
      ("-alphabet", Arg.Set_int alphabet, "N  fix the per-byte alphabet (default seed-derived)");
      ( "-trees",
        Arg.Set_string trees,
        "LIST  comma-separated subset of T,B,pkT,pkB,prefix (default all; classic kind), or \
         of the registry tags (recover kind)" );
      ( "-kind",
        Arg.Set_string kind,
        "KIND  classic | recover | rebuild | parallel (default $PK_CHAOS_KIND or classic)" );
      ("-readers", Arg.Set_int readers, "N  reader domains per parallel schedule (default 2)");
      ("-shards", Arg.Set_int shards, "N  shards per parallel schedule (default 4)");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "chaos_main [options]: differential chaos testing of the index structures";
  let kind =
    try kind_of_string !kind
    with Invalid_argument msg ->
      Printf.eprintf "chaos_main: %s\n" msg;
      exit 2
  in
  let seed_list = List.init !seeds (fun i -> !base + i) in
  let plan = if !faults then fun ~seed -> Chaos.default_fault_plan ~seed else fun ~seed:_ -> [] in
  let alphabet = if !alphabet = 0 then None else Some !alphabet in
  (* Run schedule by schedule, collecting every failure: a single bad
     seed must fail the run without silencing later schedules. *)
  let failures = ref 0 in
  let total = ref Chaos.zero in
  let schedules = ref 0 in
  let restarts = ref 0 in
  let run_one label f =
    incr schedules;
    match f () with
    | o -> total := Chaos.add !total o
    | exception Failure msg ->
        incr failures;
        Printf.eprintf "chaos FAILURE (%s): %s\n%!" label msg
  in
  (match kind with
  | Classic ->
      let trees =
        if !trees = "" then Chaos.all_trees
        else
          try List.map Chaos.tree_of_tag (String.split_on_char ',' !trees)
          with Invalid_argument msg ->
            Printf.eprintf "chaos_main: %s\n" msg;
            exit 2
      in
      List.iter
        (fun seed ->
          List.iter
            (fun tree ->
              run_one
                (Printf.sprintf "tree=%s seed=%d" (Chaos.tree_tag tree) seed)
                (fun () ->
                  Chaos.run_schedule ~faults:(plan ~seed) ?alphabet ~tree ~seed ~ops:!ops ()))
            trees)
        seed_list
  | (Recover | Rebuild) as k ->
      let tags =
        if !trees = "" then Chaos.recover_tags ()
        else begin
          let known = Chaos.recover_tags () in
          let asked = String.split_on_char ',' !trees in
          List.iter
            (fun t ->
              if not (List.mem t known) then begin
                Printf.eprintf "chaos_main: unknown scheme tag %S; valid tags: %s\n" t
                  (String.concat ", " known);
                exit 2
              end)
            asked;
          asked
        end
      in
      let schedule =
        match k with
        | Rebuild -> Chaos.run_rebuild_schedule
        | Classic | Recover | Parallel -> Chaos.run_recover_schedule
      in
      List.iter
        (fun seed ->
          List.iter
            (fun tag ->
              run_one
                (Printf.sprintf "tag=%s seed=%d" tag seed)
                (fun () -> schedule ~faults:(plan ~seed) ~tag ~seed ~ops:!ops ()))
            tags)
        seed_list
  | Parallel ->
      List.iter
        (fun seed ->
          run_one
            (Printf.sprintf "parallel seed=%d" seed)
            (fun () ->
              let o, r =
                Chaos.run_parallel_schedule ~readers:!readers ~shards:!shards ~seed ~ops:!ops ()
              in
              restarts := !restarts + r;
              o))
        seed_list);
  let o = !total in
  Printf.printf
    "chaos[%s]: %d schedules, %d ops, %d applied, %d injected, %d validations, %d failures%s\n"
    (match kind with
    | Classic -> "classic"
    | Recover -> "recover"
    | Rebuild -> "rebuild"
    | Parallel -> "parallel")
    !schedules o.Chaos.ops o.Chaos.applied o.Chaos.injected o.Chaos.validations !failures
    (match kind with
    | Parallel -> Printf.sprintf ", %d reader restarts" !restarts
    | Classic | Recover | Rebuild -> "");
  if !failures > 0 then begin
    Printf.eprintf "chaos: %d of %d schedules failed; metrics at exit:\n" !failures !schedules;
    prerr_string (Pk_obs.Obs.prometheus Pk_obs.Obs.Registry.default);
    exit 1
  end
