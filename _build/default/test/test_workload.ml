(* Tests for the workload library: distributions, datasets, and the
   measurement drivers. *)

module Prng = Pk_util.Prng
module Key = Pk_keys.Key
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Partial_key = Pk_partialkey.Partial_key
module Workload = Pk_workload.Workload
module Distribution = Pk_workload.Distribution

let pk2 = Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 }

let test_uniform_sampler () =
  let rng = Prng.create 1L in
  let s = Distribution.sampler Distribution.Uniform ~n:100 ~rng in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = s () in
    if i < 0 || i >= 100 then Alcotest.fail "out of range";
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c -> if abs (c - 500) > 200 then Alcotest.failf "skewed bucket: %d" c)
    counts

let test_sequential_sampler () =
  let rng = Prng.create 1L in
  let s = Distribution.sampler Distribution.Sequential ~n:5 ~rng in
  let got = List.init 11 (fun _ -> s ()) in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 3; 4; 0; 1; 2; 3; 4; 0 ] got

let test_zipf_sampler_skews () =
  let rng = Prng.create 2L in
  let s = Distribution.sampler (Distribution.Zipf 1.2) ~n:1000 ~rng in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let i = s () in
    counts.(i) <- counts.(i) + 1
  done;
  (* Rank 0 dominates; tail is thin. *)
  Alcotest.(check bool) "head heavy" true (counts.(0) > counts.(10) && counts.(0) > 5_000);
  let tail = Array.fold_left ( + ) 0 (Array.sub counts 500 500) in
  Alcotest.(check bool) (Printf.sprintf "thin tail (%d)" tail) true (tail < 20_000)

let test_zipf_bounds () =
  let rng = Prng.create 3L in
  let s = Distribution.sampler (Distribution.Zipf 0.8) ~n:7 ~rng in
  for _ = 1 to 10_000 do
    let i = s () in
    if i < 0 || i >= 7 then Alcotest.failf "zipf out of range: %d" i
  done

let test_sampler_validation () =
  let rng = Prng.create 4L in
  Alcotest.(check bool) "n=0 rejected" true
    (try
       let (_ : unit -> int) = Distribution.sampler Distribution.Uniform ~n:0 ~rng in
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad skew rejected" true
    (try
       let (_ : unit -> int) = Distribution.sampler (Distribution.Zipf 0.0) ~n:5 ~rng in
       false
     with Invalid_argument _ -> true)

let test_dataset_deterministic () =
  let env1 = Workload.make_env () in
  let env2 = Workload.make_env () in
  let d1 = Workload.make_dataset env1 ~seed:5 ~key_len:10 ~alphabet:50 ~n:500 () in
  let d2 = Workload.make_dataset env2 ~seed:5 ~key_len:10 ~alphabet:50 ~n:500 () in
  Alcotest.(check bool) "same keys for same seed" true
    (Array.for_all2 Key.equal d1.Workload.keys d2.Workload.keys);
  let d3 = Workload.make_dataset env1 ~seed:6 ~key_len:10 ~alphabet:50 ~n:500 () in
  Alcotest.(check bool) "different seed differs" true
    (not (Array.for_all2 Key.equal d1.Workload.keys d3.Workload.keys))

let test_load_and_probes () =
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len:12 ~alphabet:100 ~n:2000 () in
  let ix = Index.make Index.B_tree pk2 env.Workload.mem env.Workload.records in
  Workload.load ds ix;
  Alcotest.(check int) "all loaded" 2000 (ix.Index.count ());
  let p = Workload.probes ds ~n:500 () in
  Array.iter
    (fun k ->
      if ix.Index.lookup k = None then Alcotest.fail "probe key not found (must be successful)")
    p;
  (* Wraparound beyond the dataset size. *)
  let p2 = Workload.probes ds ~n:3000 () in
  Alcotest.(check int) "padded probes" 3000 (Array.length p2)

let test_measure_cache_consistency () =
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len:20 ~alphabet:12 ~n:20_000 () in
  let ix = Index.make Index.B_tree pk2 env.Workload.mem env.Workload.records in
  Workload.load ds ix;
  let warm = Workload.probes ds ~seed:1 ~n:1000 () in
  let probes = Workload.probes ds ~seed:2 ~n:2000 () in
  let cs = Workload.measure_cache env ix ~warm ~probes in
  Alcotest.(check bool) "l1 >= l2 misses" true (cs.Workload.l1_per_op >= cs.Workload.l2_per_op);
  Alcotest.(check bool) "successful pk lookups deref at least once" true
    (cs.Workload.derefs_per_op >= 1.0);
  (* Lookups matching an internal separator stop early, so mean
     visits sit just below the height. *)
  Alcotest.(check bool) "visits within one of height" true
    (cs.Workload.visits_per_op >= float_of_int (ix.Index.height ()) -. 1.0
    && cs.Workload.visits_per_op <= float_of_int (ix.Index.height ()) +. 0.01);
  Alcotest.(check bool) "sim time positive" true (cs.Workload.sim_ns_per_op > 0.0);
  (* Tracing must be off afterwards: wall runs unaffected. *)
  Alcotest.(check bool) "tracing off after measure" true
    (not (Pk_mem.Mem.tracing env.Workload.mem))

let test_measure_repeatable () =
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len:12 ~alphabet:220 ~n:10_000 () in
  let ix = Index.make Index.T_tree Layout.Indirect env.Workload.mem env.Workload.records in
  Workload.load ds ix;
  let warm = Workload.probes ds ~seed:1 ~n:500 () in
  let probes = Workload.probes ds ~seed:2 ~n:1000 () in
  let a = Workload.measure_cache env ix ~warm ~probes in
  let b = Workload.measure_cache env ix ~warm ~probes in
  Alcotest.(check (float 1e-9)) "deterministic misses" a.Workload.l2_per_op b.Workload.l2_per_op

let test_wall_ns_positive () =
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len:8 ~alphabet:220 ~n:5000 () in
  let ix = Index.make Index.B_tree (Layout.Direct { key_len = 8 }) env.Workload.mem env.Workload.records in
  Workload.load ds ix;
  let probes = Workload.probes ds ~n:2000 () in
  let ns = Workload.wall_ns_per_op ~repeats:3 env ix ~probes in
  Alcotest.(check bool) (Printf.sprintf "sane wall time (%.0f ns)" ns) true
    (ns > 10.0 && ns < 1_000_000.0)

let test_run_mix () =
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len:10 ~alphabet:100 ~n:3000 () in
  let ix = Index.make Index.B_tree pk2 env.Workload.mem env.Workload.records in
  Workload.load ds ix;
  let r = Workload.run_mix env ix ds ~lookup_pct:50 ~insert_pct:25 ~delete_pct:25 ~ops:5000 () in
  Alcotest.(check int) "ops recorded" 5000 r.Workload.ops_done;
  Alcotest.(check int) "count consistent" (ix.Index.count ()) r.Workload.final_count;
  ix.Index.validate ();
  Alcotest.(check bool) "bad mix rejected" true
    (try
       ignore (Workload.run_mix env ix ds ~lookup_pct:50 ~insert_pct:30 ~delete_pct:25 ~ops:1 ());
       false
     with Invalid_argument _ -> true)

let test_run_mix_zipf () =
  let env = Workload.make_env () in
  let ds = Workload.make_dataset env ~key_len:10 ~alphabet:100 ~n:2000 () in
  let ix = Index.make Index.T_tree pk2 env.Workload.mem env.Workload.records in
  Workload.load ds ix;
  let r =
    Workload.run_mix env ix ds ~distribution:(Distribution.Zipf 1.0) ~lookup_pct:40
      ~insert_pct:30 ~delete_pct:30 ~ops:4000 ()
  in
  ix.Index.validate ();
  Alcotest.(check bool) "final count sane" true (r.Workload.final_count <= 2000)

let () =
  Alcotest.run "pk_workload"
    [
      ( "distribution",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_sampler;
          Alcotest.test_case "sequential" `Quick test_sequential_sampler;
          Alcotest.test_case "zipf skew" `Quick test_zipf_sampler_skews;
          Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "validation" `Quick test_sampler_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "dataset determinism" `Quick test_dataset_deterministic;
          Alcotest.test_case "load + probes" `Quick test_load_and_probes;
          Alcotest.test_case "measure_cache consistency" `Quick test_measure_cache_consistency;
          Alcotest.test_case "measure repeatable" `Quick test_measure_repeatable;
          Alcotest.test_case "wall clock sane" `Quick test_wall_ns_positive;
          Alcotest.test_case "mixed ops" `Quick test_run_mix;
          Alcotest.test_case "mixed ops, zipf" `Quick test_run_mix_zipf;
        ] );
    ]
