(* Tests for the experiment registry and the Bechamel timing wrapper. *)

module Experiment = Pk_harness.Experiment
module Bench_time = Pk_harness.Bench_time

(* The registry is global; use unique ids per test. *)
let mk id = { Experiment.id; title = "t-" ^ id; paper_ref = "test"; run = (fun () -> ()) }

let test_register_and_find () =
  Experiment.register (mk "zz1");
  Experiment.register (mk "zz2");
  Alcotest.(check bool) "find exact" true (Experiment.find "zz1" <> None);
  Alcotest.(check bool) "find case-insensitive" true (Experiment.find "ZZ2" <> None);
  Alcotest.(check bool) "missing" true (Experiment.find "nope" = None);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Experiment.register (mk "zz1");
       false
     with Invalid_argument _ -> true)

let test_run_ids () =
  let hits = ref [] in
  Experiment.register
    { Experiment.id = "zz3"; title = "t"; paper_ref = "p"; run = (fun () -> hits := "zz3" :: !hits) };
  Experiment.register
    { Experiment.id = "zz4"; title = "t"; paper_ref = "p"; run = (fun () -> hits := "zz4" :: !hits) };
  Experiment.run_ids [ "zz4"; "zz3" ];
  Alcotest.(check (list string)) "ran in requested order" [ "zz3"; "zz4" ] !hits;
  Alcotest.(check bool) "unknown id fails" true
    (try
       Experiment.run_ids [ "does-not-exist" ];
       false
     with Failure _ -> true)

let test_scaling_env () =
  Unix.putenv "PK_KEYS" "12345";
  Alcotest.(check int) "PK_KEYS wins" 12345 (Experiment.scaled_keys 999);
  Unix.putenv "PK_KEYS" "";
  Unix.putenv "PK_SCALE" "2.0";
  Alcotest.(check int) "PK_SCALE multiplies" 2000 (Experiment.scaled_keys 1000);
  Unix.putenv "PK_SCALE" "0.001";
  Alcotest.(check int) "floor at 1000" 1000 (Experiment.scaled_keys 500_000);
  Unix.putenv "PK_SCALE" "";
  Unix.putenv "PK_LOOKUPS" "777";
  Alcotest.(check int) "PK_LOOKUPS wins" 777 (Experiment.scaled_lookups 10);
  Unix.putenv "PK_LOOKUPS" ""

let test_bench_time_measures () =
  (* A deliberately slow thunk vs a fast one: the OLS estimates must
     order them and be positive. *)
  let counter = ref 0 in
  let fast () = incr counter in
  let slow () =
    for _ = 1 to 2000 do
      incr counter
    done
  in
  let results = Bench_time.time_group ~name:"t" [ ("fast", fast); ("slow", slow) ] in
  let fast_ns = List.assoc "fast" results in
  let slow_ns = List.assoc "slow" results in
  Alcotest.(check bool) "positive" true (fast_ns > 0.0 && slow_ns > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "ordering (%.1f < %.1f)" fast_ns slow_ns)
    true
    (fast_ns < slow_ns)

let () =
  Alcotest.run "pk_harness"
    [
      ( "experiment",
        [
          Alcotest.test_case "register/find" `Quick test_register_and_find;
          Alcotest.test_case "run_ids" `Quick test_run_ids;
          Alcotest.test_case "env scaling" `Quick test_scaling_env;
        ] );
      ("bench_time", [ Alcotest.test_case "bechamel wrapper" `Quick test_bench_time_measures ]);
    ]
