(* Tests for FINDNODE / FINDBITTREE / naive linear search over
   synthetic in-memory nodes, validated against a sorted-array model. *)

module Key = Pk_keys.Key
module Prng = Pk_util.Prng
module Keygen = Pk_keys.Keygen
module Partial_key = Pk_partialkey.Partial_key
module Pk_compare = Pk_partialkey.Pk_compare
module Node_search = Pk_partialkey.Node_search

let byte_or_zero k i = if i < Bytes.length k then Char.code (Bytes.get k i) else 0

let bit_or_zero k i =
  if i >= 8 * Bytes.length k then 0
  else (Char.code (Bytes.get k (i lsr 3)) lsr (7 - (i land 7))) land 1

(* Truncate a bit-granularity partial key to [tb] stored bits (the
   library parameterises l in bytes; the paper's Example 3.2 uses
   l = 1 bit). *)
let truncate_bits tb (pk : Partial_key.t) =
  let len = min pk.Partial_key.pk_len tb in
  let bits =
    if len = 0 then Bytes.empty
    else begin
      let w = (len + 7) / 8 in
      let b = Bytes.sub pk.Partial_key.pk_bits 0 w in
      let rem = len mod 8 in
      if rem > 0 then
        Bytes.set b (w - 1)
          (Char.chr (Char.code (Bytes.get b (w - 1)) land (0xff lsl (8 - rem) land 0xff)));
      b
    end
  in
  { pk with Partial_key.pk_len = len; pk_bits = bits }

(* entry_ops over plain arrays. [base] is the base key for entry 0. *)
let make_ops ?truncate g ~l_bytes ~base ~keys ~search ~derefs : Node_search.entry_ops =
  let pks =
    Array.mapi
      (fun i k ->
        let pk =
          Partial_key.encode g ~l_bytes ~base:(if i = 0 then base else keys.(i - 1)) ~key:k
        in
        match truncate with Some tb -> truncate_bits tb pk | None -> pk)
      keys
  in
  {
    Node_search.num_keys = Array.length keys;
    pk_off = (fun i -> pks.(i).Partial_key.pk_off);
    resolve_units =
      (fun i ~rel ~off ->
        Pk_compare.resolve_by_units g ~search ~rel ~off ~pk_len:pks.(i).Partial_key.pk_len
          ~pk_bits:pks.(i).Partial_key.pk_bits);
    branch_unit =
      (fun i ->
        match g with
        | Partial_key.Bit -> 1
        | Partial_key.Byte ->
            if pks.(i).Partial_key.pk_len = 0 then -1
            else Char.code (Bytes.get pks.(i).Partial_key.pk_bits 0));
    search_unit =
      (fun u ->
        match g with
        | Partial_key.Bit -> bit_or_zero search u
        | Partial_key.Byte -> byte_or_zero search u);
    deref =
      (fun i ->
        incr derefs;
        Partial_key.diff g search keys.(i));
  }

let check_result g ~keys ~base ~search (r : Node_search.result) =
  let mlow, mhigh = Support.model_position keys search in
  if r.Node_search.low <> mlow || r.Node_search.high <> mhigh then
    Alcotest.failf "position (%d,%d) != model (%d,%d) for search %s" r.Node_search.low
      r.Node_search.high mlow mhigh (Key.to_hex search);
  (* The returned offset must be d(search, keys[low]) — or d(search,
     base) when low = -1. *)
  let against = if r.Node_search.low = -1 then base else keys.(r.Node_search.low) in
  let _, d_true = Partial_key.diff g search against in
  if r.Node_search.off_low <> d_true then
    Alcotest.failf "off_low %d != %d (low=%d)" r.Node_search.off_low d_true r.Node_search.low

let run_both g ~l_bytes ~base ~keys ~search =
  let c0, d0 = Partial_key.diff g search base in
  Alcotest.(check bool) "precondition: search above base" true (c0 = Key.Gt);
  let d1 = ref 0 and d2 = ref 0 in
  let r1 = Node_search.find_node (make_ops g ~l_bytes ~base ~keys ~search ~derefs:d1) ~rel0:Key.Gt ~off0:d0 in
  let r2 =
    Node_search.naive_find_node (make_ops g ~l_bytes ~base ~keys ~search ~derefs:d2) ~rel0:Key.Gt
      ~off0:d0
  in
  check_result g ~keys ~base ~search r1;
  check_result g ~keys ~base ~search r2;
  (!d1, !d2)

let prop_positions g ~l_bytes seed =
  let rng = Prng.create (Int64.of_int seed) in
  let len = 2 + Prng.int rng 5 in
  let alphabet = 2 + Prng.int rng 6 in
  let n = 2 + Prng.int rng 16 in
  match Keygen.uniform ~rng ~key_len:len ~alphabet (n + 2) with
  | exception Invalid_argument _ -> true
  | pool ->
      Array.sort Key.compare pool;
      let base = pool.(0) in
      let keys = Array.sub pool 1 (Array.length pool - 2) in
      let search =
        if Prng.bool rng then keys.(Prng.int rng (Array.length keys))
        else pool.(1 + Prng.int rng (Array.length pool - 1))
      in
      ignore (run_both g ~l_bytes ~base ~keys ~search);
      true

(* FINDNODE never needs more dereferences than the naive linear
   search (§3.3's point). *)
let prop_findnode_cheaper g ~l_bytes seed =
  let rng = Prng.create (Int64.of_int seed) in
  match Keygen.uniform ~rng ~key_len:4 ~alphabet:3 18 with
  | exception Invalid_argument _ -> true
  | pool ->
      Array.sort Key.compare pool;
      let base = pool.(0) in
      let keys = Array.sub pool 1 16 in
      let search = pool.(1 + Prng.int rng 17) in
      let d_find, d_naive = run_both g ~l_bytes ~base ~keys ~search in
      d_find <= d_naive

(* Bit-granularity FINDNODE uses at most one dereference (the Bit-Tree
   property exploited by FINDBITTREE). *)
let prop_at_most_one_deref seed =
  let rng = Prng.create (Int64.of_int seed) in
  match Keygen.uniform ~rng ~key_len:4 ~alphabet:2 20 with
  | exception Invalid_argument _ -> true
  | pool ->
      Array.sort Key.compare pool;
      let base = pool.(0) in
      let keys = Array.sub pool 1 18 in
      let search = pool.(1 + Prng.int rng 19) in
      let d, _ = run_both Partial_key.Bit ~l_bytes:0 ~base ~keys ~search in
      d <= 1

let byte_key bits =
  let k = Bytes.make 1 '\000' in
  String.iteri
    (fun i c -> if c = '1' then Bytes.set k 0 (Char.chr (Char.code (Bytes.get k 0) lor (0x80 lsr i))))
    bits;
  k

(* Example 3.2: FINDNODE locates the search key with zero
   dereferences. *)
let test_example_32_findnode () =
  let base = byte_key "00101" in
  let keys = Array.map byte_key [| "10001"; "10010"; "10100"; "10101"; "11000" |] in
  let search = byte_key "10111" in
  let derefs = ref 0 in
  let ops = make_ops ~truncate:1 Partial_key.Bit ~l_bytes:1 ~base ~keys ~search ~derefs in
  let pk_off = ops.Node_search.pk_off in
  Alcotest.(check (list int)) "offsets as in Figure 4" [ 0; 3; 2; 4; 1 ]
    (List.init 5 pk_off);
  let r = Node_search.find_node ops ~rel0:Key.Gt ~off0:0 in
  Alcotest.(check int) "low" 3 r.Node_search.low;
  Alcotest.(check int) "high" 4 r.Node_search.high;
  Alcotest.(check int) "no dereference" 0 !derefs

(* The naive linear search on the same node needs exactly one
   dereference (of key 0), as the paper notes. *)
let test_example_32_naive () =
  let base = byte_key "00101" in
  let keys = Array.map byte_key [| "10001"; "10010"; "10100"; "10101"; "11000" |] in
  let search = byte_key "10111" in
  let derefs = ref 0 in
  let ops = make_ops ~truncate:1 Partial_key.Bit ~l_bytes:1 ~base ~keys ~search ~derefs in
  let r = Node_search.naive_find_node ops ~rel0:Key.Gt ~off0:0 in
  Alcotest.(check int) "low" 3 r.Node_search.low;
  Alcotest.(check int) "high" 4 r.Node_search.high;
  Alcotest.(check int) "exactly one dereference" 1 !derefs

let test_empty_node () =
  let derefs = ref 0 in
  let ops =
    make_ops Partial_key.Byte ~l_bytes:2 ~base:(Bytes.of_string "a") ~keys:[||]
      ~search:(Bytes.of_string "b") ~derefs
  in
  let r = Node_search.find_node ops ~rel0:Key.Gt ~off0:0 in
  Alcotest.(check int) "low" (-1) r.Node_search.low;
  Alcotest.(check int) "high" 0 r.Node_search.high

let test_exact_match_found_as_low_eq_high () =
  let base = Bytes.of_string "aa" in
  let keys = Array.map Bytes.of_string [| "ab"; "ac"; "ba"; "bc" |] in
  Array.iteri
    (fun i k ->
      let derefs = ref 0 in
      let ops = make_ops Partial_key.Byte ~l_bytes:1 ~base ~keys ~search:k ~derefs in
      let c0, d0 = Partial_key.diff Partial_key.Byte k base in
      Alcotest.(check bool) "above base" true (c0 = Key.Gt);
      let r = Node_search.find_node ops ~rel0:Key.Gt ~off0:d0 in
      Alcotest.(check int) (Printf.sprintf "low=%d" i) i r.Node_search.low;
      Alcotest.(check int) (Printf.sprintf "high=%d" i) i r.Node_search.high)
    keys

let test_search_below_all () =
  let base = Bytes.of_string "b" in
  let keys = Array.map Bytes.of_string [| "d"; "e"; "f" |] in
  let search = Bytes.of_string "c" in
  let derefs = ref 0 in
  let ops = make_ops Partial_key.Byte ~l_bytes:1 ~base ~keys ~search ~derefs in
  let r = Node_search.find_node ops ~rel0:Key.Gt ~off0:0 in
  Alcotest.(check int) "low" (-1) r.Node_search.low;
  Alcotest.(check int) "high" 0 r.Node_search.high;
  Alcotest.(check int) "off_low unchanged" 0 r.Node_search.off_low

let test_search_above_all () =
  let base = Bytes.of_string "b" in
  let keys = Array.map Bytes.of_string [| "d"; "e"; "f" |] in
  let search = Bytes.of_string "z" in
  let derefs = ref 0 in
  let ops = make_ops Partial_key.Byte ~l_bytes:1 ~base ~keys ~search ~derefs in
  let r = Node_search.find_node ops ~rel0:Key.Gt ~off0:0 in
  Alcotest.(check int) "low" 2 r.Node_search.low;
  Alcotest.(check int) "high" 3 r.Node_search.high

let () =
  Alcotest.run "pk_node_search"
    [
      ( "model-equivalence",
        [
          Support.seeded_qtest ~count:500 "bit l=0" (prop_positions Partial_key.Bit ~l_bytes:0);
          Support.seeded_qtest ~count:500 "bit l=1" (prop_positions Partial_key.Bit ~l_bytes:1);
          Support.seeded_qtest ~count:500 "bit l=2" (prop_positions Partial_key.Bit ~l_bytes:2);
          Support.seeded_qtest ~count:500 "byte l=0" (prop_positions Partial_key.Byte ~l_bytes:0);
          Support.seeded_qtest ~count:500 "byte l=1" (prop_positions Partial_key.Byte ~l_bytes:1);
          Support.seeded_qtest ~count:500 "byte l=2" (prop_positions Partial_key.Byte ~l_bytes:2);
          Support.seeded_qtest ~count:500 "byte l=4" (prop_positions Partial_key.Byte ~l_bytes:4);
        ] );
      ( "deref-economy",
        [
          Support.seeded_qtest ~count:300 "findnode <= naive (byte l=2)"
            (prop_findnode_cheaper Partial_key.Byte ~l_bytes:2);
          Support.seeded_qtest ~count:300 "findnode <= naive (bit l=1)"
            (prop_findnode_cheaper Partial_key.Bit ~l_bytes:1);
          Support.seeded_qtest ~count:500 "bit granularity: at most one deref"
            prop_at_most_one_deref;
        ] );
      ( "example-3.2",
        [
          Alcotest.test_case "FINDNODE zero derefs" `Quick test_example_32_findnode;
          Alcotest.test_case "naive exactly one deref" `Quick test_example_32_naive;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty node" `Quick test_empty_node;
          Alcotest.test_case "exact matches" `Quick test_exact_match_found_as_low_eq_high;
          Alcotest.test_case "below all" `Quick test_search_below_all;
          Alcotest.test_case "above all" `Quick test_search_above_all;
        ] );
    ]
