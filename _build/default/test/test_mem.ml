(* Tests for the instrumented memory layer: region addressing, typed
   access round-trips, and exact cache charging. *)

module Mem = Pk_mem.Mem
module Cachesim = Pk_cachesim.Cachesim
module Machine = Pk_cachesim.Machine

let make () =
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in
  (mem, cache)

let test_regions_disjoint () =
  let mem, _ = make () in
  let a = Mem.new_region mem ~name:"a" () in
  let b = Mem.new_region mem ~name:"b" () in
  Alcotest.(check bool) "distinct bases" true (Mem.base a <> Mem.base b);
  Alcotest.(check bool) "very far apart" true (abs (Mem.base a - Mem.base b) >= 1 lsl 40);
  Alcotest.(check string) "names kept" "a" (Mem.region_name a)

let test_typed_roundtrip () =
  let mem, _ = make () in
  let r = Mem.new_region mem ~name:"r" () in
  let off = Mem.alloc r 64 in
  Mem.write_u8 r off 200;
  Mem.write_u16 r (off + 2) 60000;
  Mem.write_u32 r (off + 4) 123456789;
  Mem.write_u64 r (off + 8) 987654321012345;
  Alcotest.(check int) "u8" 200 (Mem.read_u8 r off);
  Alcotest.(check int) "u16" 60000 (Mem.read_u16 r (off + 2));
  Alcotest.(check int) "u32" 123456789 (Mem.read_u32 r (off + 4));
  Alcotest.(check int) "u64" 987654321012345 (Mem.read_u64 r (off + 8));
  Mem.write_bytes r ~off:(off + 16) ~src:(Bytes.of_string "payload") ~src_off:0 ~len:7;
  Alcotest.(check string) "bytes" "payload" (Bytes.to_string (Mem.read_bytes r ~off:(off + 16) ~len:7))

let test_move_overlap () =
  let mem, _ = make () in
  let r = Mem.new_region mem ~name:"r" () in
  let off = Mem.alloc r 32 in
  Mem.write_bytes r ~off ~src:(Bytes.of_string "0123456789") ~src_off:0 ~len:10;
  Mem.move r ~src_off:off ~dst_off:(off + 3) ~len:10;
  Alcotest.(check string) "overlapping move" "0120123456789"
    (Bytes.to_string (Mem.read_bytes r ~off ~len:13))

let test_tracing_gate () =
  let mem, cache = make () in
  let r = Mem.new_region mem ~name:"r" () in
  let off = Mem.alloc r 64 in
  (* Tracing off: nothing charged. *)
  ignore (Mem.read_u64 r off);
  Alcotest.(check int) "untraced" 0 (Cachesim.snapshot cache).Cachesim.total_accesses;
  Mem.set_tracing mem true;
  ignore (Mem.read_u64 r off);
  Alcotest.(check int) "traced" 1 (Cachesim.snapshot cache).Cachesim.total_accesses;
  Mem.set_tracing mem false;
  ignore (Mem.read_u64 r off);
  Alcotest.(check int) "off again" 1 (Cachesim.snapshot cache).Cachesim.total_accesses

let test_with_tracing_restores () =
  let mem, cache = make () in
  let r = Mem.new_region mem ~name:"r" () in
  let off = Mem.alloc r 8 in
  let result =
    Mem.with_tracing mem true (fun () ->
        ignore (Mem.read_u8 r off);
        "done")
  in
  Alcotest.(check string) "thunk result" "done" result;
  Alcotest.(check bool) "restored off" true (not (Mem.tracing mem));
  Alcotest.(check int) "charged inside" 1 (Cachesim.snapshot cache).Cachesim.total_accesses;
  (* restores even on exception *)
  (try Mem.with_tracing mem true (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true (not (Mem.tracing mem))

let test_charging_spans_blocks () =
  let mem, cache = make () in
  let r = Mem.new_region mem ~name:"r" () in
  let off = Mem.alloc r ~align:64 256 in
  Mem.set_tracing mem true;
  Cachesim.reset_stats cache;
  (* A 100-byte write from a 64-aligned offset spans exactly 2 blocks. *)
  Mem.write_bytes r ~off ~src:(Bytes.make 100 'x') ~src_off:0 ~len:100;
  Alcotest.(check int) "two blocks" 2 (Cachesim.snapshot cache).Cachesim.total_accesses;
  Mem.set_tracing mem false

let test_same_offsets_different_regions_do_not_conflict () =
  let mem, cache = make () in
  let a = Mem.new_region mem ~name:"a" () in
  let b = Mem.new_region mem ~name:"b" () in
  let oa = Mem.alloc a ~align:64 64 and ob = Mem.alloc b ~align:64 64 in
  Alcotest.(check int) "same offsets" oa ob;
  Mem.set_tracing mem true;
  Cachesim.flush cache;
  Cachesim.reset_stats cache;
  ignore (Mem.read_u8 a oa);
  ignore (Mem.read_u8 b ob);
  ignore (Mem.read_u8 a oa);
  ignore (Mem.read_u8 b ob);
  Mem.set_tracing mem false;
  (* Distinct physical addresses: 2 cold misses then hits — unless the
     direct-mapped cache aliases them (1-TiB strides share set 0!). *)
  let snap = Cachesim.snapshot cache in
  Alcotest.(check int) "four accesses" 4 snap.Cachesim.total_accesses;
  Alcotest.(check bool) "addresses differ" true (Mem.base a + oa <> Mem.base b + ob)

let test_compare_detail_semantics () =
  let mem, _ = make () in
  let r = Mem.new_region mem ~name:"r" () in
  let off = Mem.alloc r 16 in
  Mem.write_bytes r ~off ~src:(Bytes.of_string "banana") ~src_off:0 ~len:6;
  let check name probe plen exp_cmp exp_d =
    let c, d = Mem.compare_detail r ~off ~len:6 (Bytes.of_string probe) ~key_off:0 ~key_len:plen in
    Alcotest.(check int) (name ^ " cmp sign") exp_cmp (compare c 0);
    Alcotest.(check int) (name ^ " diff") exp_d d
  in
  check "equal" "banana" 6 0 6;
  check "region less" "banz" 4 (-1) 3;
  check "region greater" "bam" 3 1 2;
  check "probe prefix" "ban" 3 1 3;
  check "region prefix" "bananas" 7 (-1) 6

let () =
  Alcotest.run "pk_mem"
    [
      ( "mem",
        [
          Alcotest.test_case "regions disjoint" `Quick test_regions_disjoint;
          Alcotest.test_case "typed roundtrip" `Quick test_typed_roundtrip;
          Alcotest.test_case "overlapping move" `Quick test_move_overlap;
          Alcotest.test_case "tracing gate" `Quick test_tracing_gate;
          Alcotest.test_case "with_tracing restores" `Quick test_with_tracing_restores;
          Alcotest.test_case "block-span charging" `Quick test_charging_spans_blocks;
          Alcotest.test_case "region address separation" `Quick test_same_offsets_different_regions_do_not_conflict;
          Alcotest.test_case "compare_detail" `Quick test_compare_detail_semantics;
        ] );
    ]
