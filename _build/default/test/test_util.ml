(* Unit tests for pk_util: Prng, Stats_acc, Tables. *)

module Prng = Pk_util.Prng
module Stats_acc = Pk_util.Stats_acc
module Tables = Pk_util.Tables

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_distinct_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_prng_int_bounds () =
  let t = Prng.create 7L in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let v = Prng.int t bound in
      if v < 0 || v >= bound then Alcotest.failf "int %d out of [0,%d)" v bound
    done
  done

let test_prng_int_uniformish () =
  let t = Prng.create 9L in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.int t 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i c expected)
    counts

let test_prng_float_bounds () =
  let t = Prng.create 11L in
  for _ = 1 to 1000 do
    let v = Prng.float t 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "float %f out of range" v
  done

let test_prng_split_independent () =
  let t = Prng.create 5L in
  let u = Prng.split t in
  Alcotest.(check bool) "split stream differs" true (Prng.next_int64 t <> Prng.next_int64 u)

let test_prng_copy () =
  let t = Prng.create 13L in
  ignore (Prng.next_int64 t);
  let u = Prng.copy t in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 t) (Prng.next_int64 u)

let test_stats_basic () =
  let s = Stats_acc.create () in
  List.iter (Stats_acc.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats_acc.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats_acc.mean s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats_acc.total s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats_acc.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats_acc.max s);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 (Stats_acc.stddev s)

let test_stats_percentile () =
  let s = Stats_acc.create () in
  for i = 1 to 100 do
    Stats_acc.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats_acc.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats_acc.percentile s 100.0);
  Alcotest.(check (float 0.6)) "p50" 50.5 (Stats_acc.percentile s 50.0);
  Alcotest.(check (float 0.6)) "p90" 90.1 (Stats_acc.percentile s 90.0)

let test_stats_growth_and_interleaved_percentiles () =
  (* add -> percentile -> add again exercises the re-sort path. *)
  let s = Stats_acc.create () in
  for i = 1 to 200 do
    Stats_acc.add s (float_of_int (201 - i))
  done;
  ignore (Stats_acc.percentile s 50.0);
  Stats_acc.add s 1000.0;
  Alcotest.(check (float 1e-9)) "new max" 1000.0 (Stats_acc.max s);
  Alcotest.(check int) "count" 201 (Stats_acc.count s)

let test_stats_empty () =
  let s = Stats_acc.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats_acc.mean s);
  Alcotest.check_raises "min raises" (Invalid_argument "Stats_acc.min: empty") (fun () ->
      ignore (Stats_acc.min s))

let test_stats_merge () =
  let a = Stats_acc.create () and b = Stats_acc.create () in
  List.iter (Stats_acc.add a) [ 1.0; 2.0 ];
  List.iter (Stats_acc.add b) [ 3.0; 4.0 ];
  let m = Stats_acc.merge a b in
  Alcotest.(check int) "merged count" 4 (Stats_acc.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.5 (Stats_acc.mean m)

let test_tables_render () =
  let t = Tables.create ~columns:[ ("name", Tables.Left); ("n", Tables.Right) ] in
  Tables.add_row t [ "alpha"; "1" ];
  Tables.add_separator t;
  Tables.add_row t [ "b"; "22" ];
  let s = Tables.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned widths" w w') rest
  | [] -> Alcotest.fail "no output");
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Tables.add_row: 1 cells for 2 columns") (fun () ->
      Tables.add_row t [ "only-one" ])

let test_tables_csv () =
  let t = Tables.create ~columns:[ ("a", Tables.Left); ("b", Tables.Left) ] in
  Tables.add_row t [ "x,y"; "plain" ];
  Tables.add_row t [ "with\"quote"; "z" ];
  let csv = Tables.render_csv t in
  Alcotest.(check string) "csv escaping" "a,b\n\"x,y\",plain\n\"with\"\"quote\",z\n" csv

let test_formats () =
  Alcotest.(check string) "fmt_int" "1,500,000" (Tables.fmt_int 1_500_000);
  Alcotest.(check string) "fmt_int small" "42" (Tables.fmt_int 42);
  Alcotest.(check string) "fmt_int negative" "-1,234" (Tables.fmt_int (-1234));
  Alcotest.(check string) "fmt_float" "3.14" (Tables.fmt_float 3.14159);
  Alcotest.(check string) "fmt_bytes b" "512 B" (Tables.fmt_bytes 512);
  Alcotest.(check string) "fmt_bytes k" "1.5 KiB" (Tables.fmt_bytes 1536);
  Alcotest.(check string) "fmt_bytes m" "2.0 MiB" (Tables.fmt_bytes (2 * 1024 * 1024))

let test_scatter_render () =
  let open Pk_util.Scatter in
  let s =
    render ~width:20 ~height:5 ~x_label:"x" ~y_label:"y"
      [
        { label = "lo"; marker = 'a'; points = [ (0.0, 0.0); (1.0, 1.0) ] };
        { label = "hi"; marker = 'z'; points = [ (2.0, 5.0) ] };
      ]
  in
  Alcotest.(check bool) "contains markers" true
    (String.contains s 'a' && String.contains s 'z');
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "legend lines" true
    (List.exists (fun l -> l = "   a = lo") lines && List.exists (fun l -> l = "   z = hi") lines);
  Alcotest.(check bool) "plot rows present" true (List.length lines >= 5);
  (* ranges annotated *)
  Alcotest.(check bool) "x range" true
    (List.exists (fun l -> l = "   x: 0.00 .. 2.00") lines)

let test_scatter_empty () =
  let open Pk_util.Scatter in
  Alcotest.(check string) "empty" "(no data)\n" (render ~x_label:"x" ~y_label:"y" []);
  (* single point (degenerate ranges) must not crash *)
  let s = render ~x_label:"x" ~y_label:"y" [ { label = "p"; marker = '*'; points = [ (3.0, 4.0) ] } ] in
  Alcotest.(check bool) "single point renders" true (String.contains s '*')

let () =
  Alcotest.run "pk_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "distinct seeds" `Quick test_prng_distinct_seeds;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int uniform-ish" `Quick test_prng_int_uniformish;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "growth + resort" `Quick test_stats_growth_and_interleaved_percentiles;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "tables",
        [
          Alcotest.test_case "render alignment" `Quick test_tables_render;
          Alcotest.test_case "csv escaping" `Quick test_tables_csv;
          Alcotest.test_case "formats" `Quick test_formats;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "render" `Quick test_scatter_render;
          Alcotest.test_case "degenerate" `Quick test_scatter_empty;
        ] );
    ]
