test/test_records.mli:
