test/test_ttree.mli:
