test/test_btree.ml: Alcotest Array Bytes List Pk_core Pk_keys Pk_partialkey Pk_records Pk_util Printf Seq Support
