test/test_node_search.ml: Alcotest Array Bytes Char Int64 List Pk_keys Pk_partialkey Pk_util Printf String Support
