test/test_ttree.ml: Alcotest Array Bytes Hashtbl List Pk_core Pk_keys Pk_partialkey Pk_records Pk_util Printf Seq Support
