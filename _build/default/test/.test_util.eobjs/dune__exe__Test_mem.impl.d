test/test_mem.ml: Alcotest Bytes Pk_cachesim Pk_mem
