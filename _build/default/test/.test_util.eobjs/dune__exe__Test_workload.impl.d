test/test_workload.ml: Alcotest Array List Pk_core Pk_keys Pk_mem Pk_partialkey Pk_util Pk_workload Printf
