test/test_node_search.mli:
