test/test_integration.ml: Alcotest Array Bytes Char Hashtbl Int64 List Pk_cachesim Pk_core Pk_keys Pk_mem Pk_partialkey Pk_records Pk_util Printf Support
