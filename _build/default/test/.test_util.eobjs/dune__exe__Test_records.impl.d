test/test_records.ml: Alcotest Array Bytes List Option Pk_cachesim Pk_keys Pk_mem Pk_records Pk_util Printf Support
