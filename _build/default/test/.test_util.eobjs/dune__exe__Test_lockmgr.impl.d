test/test_lockmgr.ml: Alcotest Bytes Format Int64 List Pk_core Pk_keys Pk_lockmgr Pk_partialkey Pk_records Pk_util Printf Support
