test/test_keys.mli:
