test/test_keys.ml: Alcotest Array Bytes Char Hashtbl Int64 List Pk_keys Pk_util String Support
