test/test_prefix_btree.ml: Alcotest Array Bytes List Option Pk_cachesim Pk_core Pk_keys Pk_mem Pk_records Pk_util Printf Seq Support
