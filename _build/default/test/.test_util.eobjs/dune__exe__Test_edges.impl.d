test/test_edges.ml: Alcotest Array Bytes Char List Pk_core Pk_keys Pk_partialkey Pk_records Pk_util Printf Seq Support
