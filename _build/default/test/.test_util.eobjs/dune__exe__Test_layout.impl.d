test/test_layout.ml: Alcotest Bytes Char Int64 Pk_cachesim Pk_core Pk_keys Pk_mem Pk_partialkey Pk_util Support
