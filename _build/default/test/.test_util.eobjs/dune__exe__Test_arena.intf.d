test/test_arena.mli:
