test/test_arena.ml: Alcotest Bytes Pk_arena
