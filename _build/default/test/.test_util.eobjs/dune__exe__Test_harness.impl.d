test/test_harness.ml: Alcotest List Pk_harness Printf Unix
