test/test_partialkey.ml: Alcotest Array Bytes Char Format Int64 List Pk_keys Pk_partialkey Pk_util Printf String Support
