test/test_partialkey.mli:
