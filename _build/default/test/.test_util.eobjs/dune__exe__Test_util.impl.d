test/test_util.ml: Alcotest Array List Pk_util String
