test/test_prefix_btree.mli:
