test/test_cachesim.ml: Alcotest Array Int64 List Pk_cachesim Pk_util Printf Support
