(* Unit tests for the byte arena. *)

module Arena = Pk_arena.Arena

let make () = Arena.create ~name:"test" ~initial_capacity:128 ()

let test_null_reserved () =
  let a = make () in
  let off = Arena.alloc a 16 in
  Alcotest.(check bool) "never returns null" true (off <> Arena.null);
  Alcotest.(check bool) "null is zero" true (Arena.null = 0)

let test_alignment () =
  let a = make () in
  ignore (Arena.alloc a 3);
  let off8 = Arena.alloc a ~align:8 10 in
  Alcotest.(check int) "8-aligned" 0 (off8 mod 8);
  let off64 = Arena.alloc a ~align:64 7 in
  Alcotest.(check int) "64-aligned" 0 (off64 mod 64)

let test_growth () =
  let a = make () in
  let off = Arena.alloc a 100_000 in
  Arena.set_u8 a (off + 99_999) 0xAB;
  Alcotest.(check int) "read back across growth" 0xAB (Arena.get_u8 a (off + 99_999));
  Alcotest.(check bool) "capacity grew" true (Arena.capacity a >= 100_000)

let test_growth_preserves_data () =
  let a = make () in
  let off = Arena.alloc a 64 in
  Arena.set_u64 a off 0x1122334455667788;
  ignore (Arena.alloc a 1_000_000);
  Alcotest.(check int) "data preserved" 0x1122334455667788 (Arena.get_u64 a off)

let test_typed_accessors () =
  let a = make () in
  let off = Arena.alloc a 32 in
  Arena.set_u8 a off 0x7F;
  Arena.set_u16 a (off + 2) 0xBEEF;
  Arena.set_u32 a (off + 4) 0xDEADBEEF;
  Arena.set_u64 a (off + 8) max_int;
  Alcotest.(check int) "u8" 0x7F (Arena.get_u8 a off);
  Alcotest.(check int) "u16" 0xBEEF (Arena.get_u16 a (off + 2));
  Alcotest.(check int) "u32" 0xDEADBEEF (Arena.get_u32 a (off + 4));
  Alcotest.(check int) "u64" max_int (Arena.get_u64 a (off + 8))

let test_u8_u16_masking () =
  let a = make () in
  let off = Arena.alloc a 8 in
  Arena.set_u8 a off 0x1FF;
  Alcotest.(check int) "u8 masked" 0xFF (Arena.get_u8 a off);
  Arena.set_u16 a (off + 2) 0x1FFFF;
  Alcotest.(check int) "u16 masked" 0xFFFF (Arena.get_u16 a (off + 2))

let test_free_reuse () =
  let a = make () in
  let o1 = Arena.alloc a 48 in
  Arena.set_u64 a o1 99;
  Arena.free a o1 48;
  let o2 = Arena.alloc a 48 in
  Alcotest.(check int) "same-size free list reuses" o1 o2;
  Alcotest.(check int) "freed region zeroed" 0 (Arena.get_u64 a o2);
  let o3 = Arena.alloc a 24 in
  Alcotest.(check bool) "different size not reused" true (o3 <> o1)

let test_live_bytes_accounting () =
  let a = make () in
  let base = Arena.live_bytes a in
  let o = Arena.alloc a 100 in
  Alcotest.(check int) "alloc adds" (base + 100) (Arena.live_bytes a);
  Arena.free a o 100;
  Alcotest.(check int) "free subtracts" base (Arena.live_bytes a);
  ignore (Arena.alloc a 100);
  Alcotest.(check int) "reuse adds back" (base + 100) (Arena.live_bytes a)

let test_blits_and_compare () =
  let a = make () in
  let off = Arena.alloc a 32 in
  let src = Bytes.of_string "hello world" in
  Arena.blit_from_bytes a ~src ~src_off:0 ~dst_off:off ~len:11;
  let dst = Bytes.make 11 ' ' in
  Arena.blit_to_bytes a ~src_off:off ~dst ~dst_off:0 ~len:11;
  Alcotest.(check string) "round trip" "hello world" (Bytes.to_string dst);
  Alcotest.(check int) "compare equal" 0
    (Arena.compare_with_bytes a ~off (Bytes.of_string "hello world") ~b_off:0 ~len:11);
  Alcotest.(check bool) "compare less" true
    (Arena.compare_with_bytes a ~off (Bytes.of_string "hello worlds") ~b_off:0 ~len:11 = 0);
  Alcotest.(check bool) "compare differs" true
    (Arena.compare_with_bytes a ~off (Bytes.of_string "hellp world") ~b_off:0 ~len:11 < 0)

let test_blit_within_overlap () =
  let a = make () in
  let off = Arena.alloc a 16 in
  Arena.blit_from_bytes a ~src:(Bytes.of_string "abcdef") ~src_off:0 ~dst_off:off ~len:6;
  Arena.blit_within a ~src_off:off ~dst_off:(off + 2) ~len:6;
  Alcotest.(check string) "overlapping move"
    "ababcdef"
    (Bytes.to_string (Arena.sub_bytes a ~off ~len:8))

let test_invalid_args () =
  let a = make () in
  Alcotest.check_raises "size 0" (Invalid_argument "Arena.alloc: size <= 0") (fun () ->
      ignore (Arena.alloc a 0));
  Alcotest.check_raises "bad align"
    (Invalid_argument "Arena.alloc: align must be a positive power of two") (fun () ->
      ignore (Arena.alloc a ~align:3 8));
  Alcotest.check_raises "free null" (Invalid_argument "Arena.free: null") (fun () ->
      Arena.free a 0 8)

let () =
  Alcotest.run "pk_arena"
    [
      ( "arena",
        [
          Alcotest.test_case "null reserved" `Quick test_null_reserved;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "growth preserves data" `Quick test_growth_preserves_data;
          Alcotest.test_case "typed accessors" `Quick test_typed_accessors;
          Alcotest.test_case "u8/u16 masking" `Quick test_u8_u16_masking;
          Alcotest.test_case "free-list reuse" `Quick test_free_reuse;
          Alcotest.test_case "live-byte accounting" `Quick test_live_bytes_accounting;
          Alcotest.test_case "blits and compare" `Quick test_blits_and_compare;
          Alcotest.test_case "overlapping blit" `Quick test_blit_within_overlap;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
    ]
