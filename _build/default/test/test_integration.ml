(* Cross-module integration tests: the six schemes over one record
   heap, simulated cache behaviour matching the paper's qualitative
   claims, and the hybrid dispatcher. *)

module Key = Pk_keys.Key
module Keygen = Pk_keys.Keygen
module Prng = Pk_util.Prng
module Mem = Pk_mem.Mem
module Cachesim = Pk_cachesim.Cachesim
module Machine = Pk_cachesim.Machine
module Record_store = Pk_records.Record_store
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Hybrid = Pk_core.Hybrid

let build_all ~key_len ~alphabet ~n ~seed =
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in
  let records = Record_store.create mem in
  let rng = Prng.create (Int64.of_int seed) in
  let keys = Keygen.uniform ~rng ~key_len ~alphabet n in
  let indexes =
    List.map
      (fun (name, structure, scheme) -> (name, Index.make structure scheme mem records))
      (Index.paper_schemes ~key_len ())
  in
  Array.iter
    (fun k ->
      let rid = Record_store.insert records ~key:k ~payload:Bytes.empty in
      List.iter
        (fun (name, ix) ->
          if not (ix.Index.insert k ~rid) then Alcotest.failf "%s: insert failed" name)
        indexes)
    keys;
  (mem, cache, records, keys, indexes)

(* L2 misses per lookup, steady state: warm the cache with one set of
   random lookups, then measure a disjoint set (measuring the warm-up
   probes again would flatter deep trees — their leaf paths would
   still be resident). *)
let misses_per_lookup mem cache ix ~warm ~probes =
  Mem.set_tracing mem true;
  Cachesim.flush cache;
  Array.iter (fun k -> ignore (ix.Index.lookup k)) warm;
  let before = Cachesim.snapshot cache in
  Array.iter (fun k -> ignore (ix.Index.lookup k)) probes;
  let after = Cachesim.snapshot cache in
  Mem.set_tracing mem false;
  let d = Cachesim.diff ~before ~after in
  float_of_int (Cachesim.misses d ~level:"L2") /. float_of_int (Array.length probes)

let test_all_schemes_agree () =
  let _, _, _, keys, indexes = build_all ~key_len:12 ~alphabet:12 ~n:2000 ~seed:50 in
  List.iter (fun (name, ix) ->
      if ix.Index.count () <> 2000 then Alcotest.failf "%s: bad count" name;
      ix.Index.validate ())
    indexes;
  (* Every index returns the same rid for every key. *)
  Array.iter
    (fun k ->
      let answers = List.map (fun (name, ix) -> (name, ix.Index.lookup k)) indexes in
      match answers with
      | (_, first) :: rest ->
          if first = None then Alcotest.fail "key not found";
          List.iter
            (fun (name, a) -> if a <> first then Alcotest.failf "%s disagrees" name)
            rest
      | [] -> assert false)
    keys

let test_paper_cache_ordering () =
  (* The index must be much larger than the 2 MiB simulated L2 or every
     scheme just fits in cache — the paper used 1.5 M keys for the same
     reason (§5.2). *)
  let mem, cache, _, keys, indexes = build_all ~key_len:20 ~alphabet:12 ~n:1_000_000 ~seed:51 in
  let all_probes = Support.shuffled ~seed:52 keys in
  let warm = Array.sub all_probes 0 3000 in
  let probes = Array.sub all_probes 3000 2000 in
  let m =
    List.map (fun (name, ix) -> (name, misses_per_lookup mem cache ix ~warm ~probes)) indexes
  in
  let get n = List.assoc n m in
  let check_lt a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s (%.2f) < %s (%.2f)" a (get a) b (get b))
      true (get a < get b)
  in
  (* The paper's Figure 9 orderings at 20-byte keys, low entropy: *)
  check_lt "pkB" "B-direct";
  check_lt "pkB" "B-indirect";
  check_lt "pkB" "T-indirect";
  check_lt "pkT" "T-indirect";
  check_lt "T-direct" "T-indirect";
  check_lt "B-direct" "T-indirect";
  (* pkB minimises misses overall — up to a 5% tolerance: in this
     memory model T-direct (whose descent touches a single 64-byte
     block per level, with upper levels well cached) is statistically
     tied with pkB at l = 2 bytes; pkB with l = 4 or bit-granularity
     offsets wins outright (bench F10a / EXPERIMENTS.md). *)
  List.iter
    (fun (name, v) ->
      if name <> "pkB" then
        Alcotest.(check bool)
          (Printf.sprintf "pkB (%.2f) <= 1.05 * %s (%.2f)" (get "pkB") name v)
          true
          (get "pkB" <= v *. 1.05))
    m

let test_simulated_time_positive () =
  let mem, cache, _, keys, indexes = build_all ~key_len:12 ~alphabet:220 ~n:5000 ~seed:53 in
  let probes = Array.sub keys 0 500 in
  Mem.set_tracing mem true;
  let before = Cachesim.snapshot cache in
  List.iter (fun (_, ix) -> Array.iter (fun k -> ignore (ix.Index.lookup k)) probes) indexes;
  let after = Cachesim.snapshot cache in
  Mem.set_tracing mem false;
  let d = Cachesim.diff ~before ~after in
  Alcotest.(check bool) "simulated time accumulates" true (d.Cachesim.sim_ns > 0.0);
  Alcotest.(check bool) "accesses recorded" true (d.Cachesim.total_accesses > 0)

let test_hybrid_dispatch () =
  let mem, records =
    let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
    let mem = Mem.create ~cache () in
    (mem, Record_store.create mem)
  in
  let small = Hybrid.make ~key_len:(Some 8) Index.B_tree mem records in
  let large = Hybrid.make ~key_len:(Some 28) Index.B_tree mem records in
  let var = Hybrid.make ~key_len:None Index.B_tree mem records in
  Alcotest.(check string) "small keys direct" "hybrid(B/direct8)" small.Index.tag;
  Alcotest.(check string) "large keys partial" "hybrid(B/pk-byte-l2)" large.Index.tag;
  Alcotest.(check string) "variable keys partial" "hybrid(B/pk-byte-l2)" var.Index.tag;
  (* And they work. *)
  let rng = Prng.create 54L in
  let keys = Keygen.uniform ~rng ~key_len:8 ~alphabet:200 500 in
  Array.iter
    (fun k ->
      let rid = Record_store.insert records ~key:k ~payload:Bytes.empty in
      Alcotest.(check bool) "hybrid insert" true (small.Index.insert k ~rid))
    keys;
  small.Index.validate ();
  Array.iter
    (fun k -> Alcotest.(check bool) "hybrid lookup" true (small.Index.lookup k <> None))
    keys

let test_variable_length_keys_pk () =
  (* Partial-key and indirect schemes accept variable-length keys when
     the set is prefix-free (terminated segment encoding). *)
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in
  let records = Record_store.create mem in
  let ix =
    Index.make Index.B_tree
      (Layout.Partial { granularity = Pk_partialkey.Partial_key.Byte; l_bytes = 2 })
      mem records
  in
  let rng = Prng.create 55L in
  let words =
    Array.init 800 (fun i ->
        let len = 3 + Prng.int rng 20 in
        let b = Bytes.init len (fun _ -> Char.chr (97 + Prng.int rng 26)) in
        Key.encode_segments [ Key.Var b; Key.Fixed (Bytes.make 2 (Char.chr (i land 0xff))) ])
  in
  let distinct = Hashtbl.create 800 in
  Array.iter (fun k -> Hashtbl.replace distinct k ()) words;
  Hashtbl.iter
    (fun k () ->
      let rid = Record_store.insert records ~key:k ~payload:Bytes.empty in
      ignore (ix.Index.insert k ~rid))
    distinct;
  ix.Index.validate ();
  Hashtbl.iter
    (fun k () ->
      if ix.Index.lookup k = None then Alcotest.failf "lost %s" (Key.to_hex k))
    distinct

let test_multi_index_shared_records () =
  (* Two indexes over the same record heap: deleting from one leaves
     the other intact (records owned by the caller). *)
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in
  let records = Record_store.create mem in
  let a = Index.make Index.B_tree Layout.Indirect mem records in
  let b =
    Index.make Index.T_tree
      (Layout.Partial { granularity = Pk_partialkey.Partial_key.Byte; l_bytes = 2 })
      mem records
  in
  let rng = Prng.create 56L in
  let keys = Keygen.uniform ~rng ~key_len:10 ~alphabet:100 1000 in
  Array.iter
    (fun k ->
      let rid = Record_store.insert records ~key:k ~payload:Bytes.empty in
      ignore (a.Index.insert k ~rid);
      ignore (b.Index.insert k ~rid))
    keys;
  Array.iteri (fun i k -> if i mod 2 = 0 then ignore (a.Index.delete k)) keys;
  a.Index.validate ();
  b.Index.validate ();
  Alcotest.(check int) "a halved" 500 (a.Index.count ());
  Alcotest.(check int) "b intact" 1000 (b.Index.count ())

let () =
  Alcotest.run "pk_integration"
    [
      ( "integration",
        [
          Alcotest.test_case "all schemes agree" `Quick test_all_schemes_agree;
          Alcotest.test_case "paper cache ordering" `Slow test_paper_cache_ordering;
          Alcotest.test_case "simulated time" `Quick test_simulated_time_positive;
          Alcotest.test_case "hybrid dispatch" `Quick test_hybrid_dispatch;
          Alcotest.test_case "variable-length keys" `Quick test_variable_length_keys_pk;
          Alcotest.test_case "shared record heap" `Quick test_multi_index_shared_records;
        ] );
    ]
