(* Shared helpers for the test suites. *)

module Prng = Pk_util.Prng
module Key = Pk_keys.Key
module Keygen = Pk_keys.Keygen
module Mem = Pk_mem.Mem
module Cachesim = Pk_cachesim.Cachesim
module Machine = Pk_cachesim.Machine
module Record_store = Pk_records.Record_store

(* A memory system with the paper's default machine attached (tracing
   off until enabled). *)
let make_env () =
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in
  let records = Record_store.create mem in
  (mem, records)

(* Distinct sorted keys of one length: prefix-free by construction. *)
let sorted_keys ~seed ~key_len ~alphabet n =
  let rng = Prng.create (Int64.of_int seed) in
  let keys = Keygen.uniform ~rng ~key_len ~alphabet n in
  Array.sort Key.compare keys;
  keys

let shuffled ~seed arr =
  let rng = Prng.create (Int64.of_int seed) in
  let copy = Array.copy arr in
  Keygen.shuffle ~rng copy;
  copy

(* Ground-truth position of [key] in a sorted array: (low, high) with
   low = high = i on an exact match, else key in (keys.(low), keys.(high))
   with the usual -1 / n sentinels. *)
let model_position keys key =
  let n = Array.length keys in
  let rec go lo hi =
    (* invariant: keys[0..lo] < key < keys[hi..] with sentinels *)
    if hi - lo = 1 then (lo, hi)
    else
      let mid = (lo + hi) / 2 in
      match Key.compare key keys.(mid) with
      | 0 -> (mid, mid)
      | c when c < 0 -> go lo mid
      | _ -> go mid hi
  in
  if n = 0 then (-1, 0) else go (-1) n

let key_testable = Alcotest.testable (fun ppf k -> Fmt.string ppf (Key.to_hex k)) Key.equal

let cmp_testable =
  Alcotest.testable Key.pp_cmp (fun a b -> a = b)

(* Seed-driven property: QCheck shrinks over the seed. *)
let seeded_qtest ?(count = 200) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count QCheck2.Gen.(int_bound 1_000_000) prop)

(* {2 Model-based index conformance}

   Drives an index through a random operation sequence, mirroring it in
   a hashtable + sorted list model, validating invariants along the
   way.  Shared by the B-tree and T-tree suites across all schemes. *)

module Index = Pk_core.Index

let conformance_run ~(make_index : Mem.t -> Record_store.t -> Index.t) ~key_len ~alphabet
    ~n_keys ~n_ops ~seed () =
  let mem, records = make_env () in
  let ix = make_index mem records in
  let rng = Prng.create (Int64.of_int seed) in
  let pool = Keygen.uniform ~rng ~key_len ~alphabet n_keys in
  let model : (Key.t, int) Hashtbl.t = Hashtbl.create n_keys in
  let fail fmt = Alcotest.failf fmt in
  let validate_every = max 1 (n_ops / 8) in
  for op = 1 to n_ops do
    let key = pool.(Prng.int rng n_keys) in
    let r = Prng.int rng 10 in
    if r < 5 then begin
      (* insert *)
      let expected_fresh = not (Hashtbl.mem model key) in
      let rid = Record_store.insert records ~key ~payload:Bytes.empty in
      let ok = ix.Index.insert key ~rid in
      if ok <> expected_fresh then
        fail "op %d: insert %s returned %b, expected %b" op (Key.to_hex key) ok expected_fresh;
      if ok then Hashtbl.replace model key rid else Record_store.delete records rid
    end
    else if r < 8 then begin
      (* delete *)
      let expected = Hashtbl.mem model key in
      let ok = ix.Index.delete key in
      if ok <> expected then
        fail "op %d: delete %s returned %b, expected %b" op (Key.to_hex key) ok expected;
      if ok then begin
        Record_store.delete records (Hashtbl.find model key);
        Hashtbl.remove model key
      end
    end
    else begin
      (* lookup *)
      let got = ix.Index.lookup key in
      let want = Hashtbl.find_opt model key in
      if got <> want then
        fail "op %d: lookup %s returned %s, expected %s" op (Key.to_hex key)
          (match got with None -> "None" | Some r -> string_of_int r)
          (match want with None -> "None" | Some r -> string_of_int r)
    end;
    if op mod validate_every = 0 then ix.Index.validate ()
  done;
  ix.Index.validate ();
  (* Full-order check. *)
  if ix.Index.count () <> Hashtbl.length model then
    fail "count %d != model %d" (ix.Index.count ()) (Hashtbl.length model);
  let expected =
    Hashtbl.fold (fun k rid acc -> (k, rid) :: acc) model [] |> List.sort compare
  in
  let got = ref [] in
  ix.Index.iter (fun ~key ~rid -> got := (key, rid) :: !got);
  let got = List.rev !got in
  if got <> expected then fail "iteration order mismatch (%d vs %d items)"
      (List.length got) (List.length expected);
  (* Random range scans. *)
  let sorted_model = Array.of_list expected in
  for _ = 1 to 5 do
    if Array.length sorted_model > 0 then begin
      let i = Prng.int rng (Array.length sorted_model) in
      let j = Prng.int rng (Array.length sorted_model) in
      let lo_i = min i j and hi_i = max i j in
      let lo = fst sorted_model.(lo_i) and hi = fst sorted_model.(hi_i) in
      let want = Array.sub sorted_model lo_i (hi_i - lo_i + 1) |> Array.to_list in
      let acc = ref [] in
      ix.Index.range ~lo ~hi (fun ~key ~rid -> acc := (key, rid) :: !acc);
      let got_range = List.rev !acc in
      if got_range <> want then
        fail "range [%s,%s] returned %d items, expected %d" (Key.to_hex lo) (Key.to_hex hi)
          (List.length got_range) (List.length want)
    end
  done;
  (* Cursor: seq_from agrees with the model suffix from random keys
     (both present and absent starting points). *)
  for _ = 1 to 5 do
    let from = pool.(Prng.int rng n_keys) in
    let want =
      List.filter (fun (k, _) -> Key.compare k from >= 0) expected
    in
    let got = List.of_seq (Seq.take (List.length want + 1) (ix.Index.seq_from from)) in
    if got <> want then
      fail "seq_from %s: %d items, expected %d" (Key.to_hex from) (List.length got)
        (List.length want)
  done;
  (* All remaining keys must be found; then drain the index. *)
  Hashtbl.iter
    (fun k rid ->
      match ix.Index.lookup k with
      | Some r when r = rid -> ()
      | _ -> fail "final lookup of %s failed" (Key.to_hex k))
    model;
  let remaining = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
  List.iter
    (fun k ->
      if not (ix.Index.delete k) then fail "drain: delete %s failed" (Key.to_hex k))
    remaining;
  if ix.Index.count () <> 0 then fail "index not empty after drain";
  ix.Index.validate ()

(* The standard scheme matrix exercised by both tree suites. *)
let scheme_matrix ~key_len =
  let open Pk_core.Layout in
  let open Pk_partialkey.Partial_key in
  [
    ("direct", Direct { key_len });
    ("indirect", Indirect);
    ("pk-byte-l2", Partial { granularity = Byte; l_bytes = 2 });
    ("pk-byte-l0", Partial { granularity = Byte; l_bytes = 0 });
    ("pk-byte-l4", Partial { granularity = Byte; l_bytes = 4 });
    ("pk-bit-l2", Partial { granularity = Bit; l_bytes = 2 });
    ("pk-bit-l0", Partial { granularity = Bit; l_bytes = 0 });
  ]
