(* Tests for the shared entry layouts. *)

module Mem = Pk_mem.Mem
module Cachesim = Pk_cachesim.Cachesim
module Machine = Pk_cachesim.Machine
module Key = Pk_keys.Key
module Layout = Pk_core.Layout
module Partial_key = Pk_partialkey.Partial_key
module Pk_compare = Pk_partialkey.Pk_compare
module Prng = Pk_util.Prng

let region () =
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in
  Mem.new_region mem ~name:"layout" ()

let test_entry_sizes () =
  Alcotest.(check int) "direct 8" 16 (Layout.entry_size (Layout.Direct { key_len = 8 }));
  Alcotest.(check int) "direct 36" 44 (Layout.entry_size (Layout.Direct { key_len = 36 }));
  Alcotest.(check int) "indirect" 8 (Layout.entry_size Layout.Indirect);
  Alcotest.(check int) "pk l=0" 12
    (Layout.entry_size (Layout.Partial { granularity = Partial_key.Byte; l_bytes = 0 }));
  Alcotest.(check int) "pk l=2" 14
    (Layout.entry_size (Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 }));
  Alcotest.(check int) "pk bit l=2" 14
    (Layout.entry_size (Layout.Partial { granularity = Partial_key.Bit; l_bytes = 2 }))

let test_scheme_tags () =
  Alcotest.(check string) "direct" "direct20" (Layout.scheme_tag (Layout.Direct { key_len = 20 }));
  Alcotest.(check string) "indirect" "indirect" (Layout.scheme_tag Layout.Indirect);
  Alcotest.(check string) "pk" "pk-bit-l4"
    (Layout.scheme_tag (Layout.Partial { granularity = Partial_key.Bit; l_bytes = 4 }))

let test_rec_ptr_roundtrip () =
  let r = region () in
  let a = Mem.alloc r 32 in
  Layout.set_rec_ptr r a 0x1234567890;
  Alcotest.(check int) "rec ptr" 0x1234567890 (Layout.rec_ptr r a)

let test_direct_key_roundtrip () =
  let r = region () in
  let a = Mem.alloc r 64 in
  let k = Bytes.of_string "twentybytekey0123456" in
  Layout.write_direct_key r a k;
  Alcotest.check Support.key_testable "roundtrip" k (Layout.read_direct_key r a ~key_len:20);
  let c, d = Layout.compare_direct r a ~key_len:20 (Bytes.of_string "twentybytekey0123455") in
  Alcotest.check Support.cmp_testable "stored greater" Key.Gt c;
  Alcotest.(check int) "at byte 19" 19 d

let roundtrip_pk g ~l_bytes pk =
  let r = region () in
  let a = Mem.alloc r 64 in
  Layout.write_pk r a ~l_bytes pk;
  Layout.read_pk r a ~granularity:g

let test_pk_roundtrip_byte () =
  let pk = { Partial_key.pk_off = 7; pk_len = 2; pk_bits = Bytes.of_string "xy" } in
  let got = roundtrip_pk Partial_key.Byte ~l_bytes:2 pk in
  Alcotest.(check bool) "byte roundtrip" true (got = pk);
  (* shorter than l: field zero-padded, live prefix returned *)
  let pk0 = { Partial_key.pk_off = 3; pk_len = 1; pk_bits = Bytes.of_string "q" } in
  let got0 = roundtrip_pk Partial_key.Byte ~l_bytes:4 pk0 in
  Alcotest.(check bool) "clamped roundtrip" true (got0 = pk0)

let test_pk_roundtrip_bit () =
  (* 11 bits stored -> 2 bytes on disk *)
  let pk = { Partial_key.pk_off = 100; pk_len = 11; pk_bits = Bytes.of_string "\xAB\xC0" } in
  let got = roundtrip_pk Partial_key.Bit ~l_bytes:2 pk in
  Alcotest.(check bool) "bit roundtrip" true (got = pk)

let test_pk_field_bounds () =
  let r = region () in
  let a = Mem.alloc r 64 in
  Alcotest.(check bool) "pk_off overflow rejected" true
    (try
       Layout.write_pk r a ~l_bytes:2
         { Partial_key.pk_off = 70_000; pk_len = 0; pk_bits = Bytes.empty };
       false
     with Invalid_argument _ -> true)

let test_pk_first_byte () =
  let r = region () in
  let a = Mem.alloc r 64 in
  Layout.write_pk r a ~l_bytes:2 { Partial_key.pk_off = 1; pk_len = 2; pk_bits = Bytes.of_string "AB" };
  Alcotest.(check int) "first byte" (Char.code 'A') (Layout.read_pk_first_byte r a);
  Layout.write_pk r a ~l_bytes:2 { Partial_key.pk_off = 1; pk_len = 0; pk_bits = Bytes.empty };
  Alcotest.(check int) "empty -> -1" (-1) (Layout.read_pk_first_byte r a)

(* resolve_pk_units over the stored form agrees with
   Pk_compare.resolve_by_units over the in-memory form. *)
let prop_resolve_units_equiv seed =
  let rng = Prng.create (Int64.of_int seed) in
  let g = if Prng.bool rng then Partial_key.Bit else Partial_key.Byte in
  let l_bytes = 1 + Prng.int rng 3 in
  let len = 3 + Prng.int rng 4 in
  let rand_key () = Bytes.init len (fun _ -> Char.chr (Prng.int rng 5)) in
  let base = rand_key () and key = rand_key () and search = rand_key () in
  if Key.equal base key then true
  else begin
    let pk = Partial_key.encode g ~l_bytes ~base ~key in
    let r = region () in
    let a = Mem.alloc r 64 in
    Layout.write_pk r a ~l_bytes pk;
    let rel = if Prng.bool rng then Key.Gt else Key.Eq in
    let off = pk.Partial_key.pk_off in
    let expect =
      Pk_compare.resolve_by_units g ~search ~rel ~off ~pk_len:pk.Partial_key.pk_len
        ~pk_bits:pk.Partial_key.pk_bits
    in
    let got = Layout.resolve_pk_units r a ~scheme_granularity:g ~search ~rel ~off in
    got = expect
  end

let () =
  Alcotest.run "pk_layout"
    [
      ( "layout",
        [
          Alcotest.test_case "entry sizes" `Quick test_entry_sizes;
          Alcotest.test_case "scheme tags" `Quick test_scheme_tags;
          Alcotest.test_case "rec ptr" `Quick test_rec_ptr_roundtrip;
          Alcotest.test_case "direct key" `Quick test_direct_key_roundtrip;
          Alcotest.test_case "pk roundtrip (byte)" `Quick test_pk_roundtrip_byte;
          Alcotest.test_case "pk roundtrip (bit)" `Quick test_pk_roundtrip_bit;
          Alcotest.test_case "pk field bounds" `Quick test_pk_field_bounds;
          Alcotest.test_case "pk first byte" `Quick test_pk_first_byte;
          Support.seeded_qtest ~count:500 "stored/in-memory unit resolution agrees"
            prop_resolve_units_equiv;
        ] );
    ]
