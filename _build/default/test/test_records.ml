(* Tests for the record store and its cache behaviour. *)

module Mem = Pk_mem.Mem
module Cachesim = Pk_cachesim.Cachesim
module Machine = Pk_cachesim.Machine
module Record_store = Pk_records.Record_store
module Key = Pk_keys.Key

let make () =
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in
  (mem, Record_store.create mem)

let key s = Bytes.of_string s

let test_insert_read () =
  let _, rs = make () in
  let rid = Record_store.insert rs ~key:(key "alpha") ~payload:(key "payload-1") in
  Alcotest.(check bool) "non-null rid" true (rid <> Record_store.null);
  Alcotest.check Support.key_testable "key back" (key "alpha") (Record_store.read_key rs rid);
  Alcotest.(check string) "payload back" "payload-1"
    (Bytes.to_string (Record_store.read_payload rs rid));
  Alcotest.(check int) "key_len" 5 (Record_store.key_len rs rid);
  Alcotest.(check int) "count" 1 (Record_store.count rs)

let test_alignment_to_lines () =
  let _, rs = make () in
  let rids = List.init 20 (fun i -> Record_store.insert rs ~key:(key (Printf.sprintf "key-%02d" i)) ~payload:Bytes.empty) in
  List.iter (fun rid -> Alcotest.(check int) "64-aligned" 0 (rid mod 64)) rids;
  let distinct = List.sort_uniq compare (List.map (fun r -> r / 64) rids) in
  Alcotest.(check int) "each record on its own line" 20 (List.length distinct)

let test_delete_and_reuse () =
  let _, rs = make () in
  let rid = Record_store.insert rs ~key:(key "gone") ~payload:(key "xx") in
  let live = Record_store.live_bytes rs in
  Record_store.delete rs rid;
  Alcotest.(check int) "count drops" 0 (Record_store.count rs);
  Alcotest.(check bool) "live bytes drop" true (Record_store.live_bytes rs < live);
  let rid2 = Record_store.insert rs ~key:(key "gon2") ~payload:(key "xx") in
  Alcotest.(check bool) "storage reused" true (rid2 = rid)

let test_compare_key () =
  let _, rs = make () in
  let rid = Record_store.insert rs ~key:(key "banana") ~payload:Bytes.empty in
  let check name probe exp_c exp_d =
    let c, d = Record_store.compare_key rs rid (key probe) in
    Alcotest.check Support.cmp_testable (name ^ " cmp") exp_c c;
    Alcotest.(check int) (name ^ " off") exp_d d
  in
  (* results are stored-vs-probe *)
  check "equal" "banana" Key.Eq 6;
  check "stored greater" "banan!" Key.Gt 5;
  check "stored less" "bananz" Key.Lt 5;
  check "probe prefix" "ban" Key.Gt 3;
  check "stored prefix" "bananas" Key.Lt 6

let test_compare_key_bits () =
  let _, rs = make () in
  (* 'b' = 01100010 *)
  let rid = Record_store.insert rs ~key:(key "b") ~payload:Bytes.empty in
  let c, d = Record_store.compare_key_bits rs rid (key "c") in
  (* 'c' = 01100011: differs at bit 7 *)
  Alcotest.check Support.cmp_testable "lt" Key.Lt c;
  Alcotest.(check int) "bit offset" 7 d;
  let c2, d2 = Record_store.compare_key_bits rs rid (key "b") in
  Alcotest.check Support.cmp_testable "eq" Key.Eq c2;
  Alcotest.(check int) "bit offset eq" 8 d2

let test_compare_charges_only_examined_prefix () =
  let mem, rs = make () in
  let long_key = Bytes.make 200 'x' in
  Bytes.set long_key 0 'a';
  let rid = Record_store.insert rs ~key:long_key ~payload:Bytes.empty in
  let cache = Option.get (Mem.cache mem) in
  Mem.set_tracing mem true;
  Cachesim.flush cache;
  Cachesim.reset_stats cache;
  (* Probe differing at byte 0: only the first line is touched. *)
  let probe = Bytes.make 200 'x' in
  Bytes.set probe 0 'b';
  ignore (Record_store.compare_key rs rid probe);
  let snap = Cachesim.snapshot cache in
  Alcotest.(check int) "one distinct line" 1 (Cachesim.misses snap ~level:"L2");
  (* Probe equal everywhere: the whole 200-byte key (4 lines) is
     examined. *)
  Cachesim.flush cache;
  Cachesim.reset_stats cache;
  ignore (Record_store.compare_key rs rid long_key);
  let snap2 = Cachesim.snapshot cache in
  Mem.set_tracing mem false;
  Alcotest.(check int) "four distinct lines" 4 (Cachesim.misses snap2 ~level:"L2")

let test_rejects_oversized () =
  let _, rs = make () in
  Alcotest.(check bool) "oversized key rejected" true
    (try
       ignore (Record_store.insert rs ~key:(Bytes.make 70_000 'k') ~payload:Bytes.empty);
       false
     with Invalid_argument _ -> true)

let test_many_records_roundtrip () =
  let _, rs = make () in
  let rng = Pk_util.Prng.create 21L in
  let keys = Pk_keys.Keygen.uniform ~rng ~key_len:12 ~alphabet:220 500 in
  let rids = Array.map (fun k -> Record_store.insert rs ~key:k ~payload:(Bytes.of_string "p")) keys in
  Array.iteri
    (fun i rid ->
      Alcotest.check Support.key_testable "roundtrip" keys.(i) (Record_store.read_key rs rid))
    rids;
  Alcotest.(check int) "count" 500 (Record_store.count rs)

let () =
  Alcotest.run "pk_records"
    [
      ( "record_store",
        [
          Alcotest.test_case "insert/read" `Quick test_insert_read;
          Alcotest.test_case "line alignment" `Quick test_alignment_to_lines;
          Alcotest.test_case "delete and reuse" `Quick test_delete_and_reuse;
          Alcotest.test_case "compare_key" `Quick test_compare_key;
          Alcotest.test_case "compare_key_bits" `Quick test_compare_key_bits;
          Alcotest.test_case "charges examined prefix" `Quick test_compare_charges_only_examined_prefix;
          Alcotest.test_case "oversized rejected" `Quick test_rejects_oversized;
          Alcotest.test_case "500-record roundtrip" `Quick test_many_records_roundtrip;
        ] );
    ]
