(* Tests for Partial_key and Pk_compare: Theorem 3.1, COMPAREPARTKEY
   (Fig. 3 + Appendix A), and the paper's worked Example 3.2. *)

module Key = Pk_keys.Key
module Prng = Pk_util.Prng
module Partial_key = Pk_partialkey.Partial_key
module Pk_compare = Pk_partialkey.Pk_compare

let byte_key bits =
  (* "10111" -> single byte 10111000 *)
  let k = Bytes.make 1 '\000' in
  String.iteri
    (fun i c -> if c = '1' then Bytes.set k 0 (Char.chr (Char.code (Bytes.get k 0) lor (0x80 lsr i))))
    bits;
  k

(* {2 Theorem 3.1 against brute force} *)

let check_theorem g ki kj kb =
  let ci, di = Partial_key.diff g ki kb in
  let cj, dj = Partial_key.diff g kj kb in
  if ci = cj && ci <> Key.Eq && di <> dj then begin
    let c_true, d_true = Partial_key.diff g ki kj in
    let d_thm = min di dj in
    let c_thm = if di > dj then Key.flip ci else ci in
    if d_true <> d_thm || c_true <> c_thm then
      Alcotest.failf "theorem violated: ki=%s kj=%s kb=%s (got %s/%d want %s/%d)"
        (Key.to_hex ki) (Key.to_hex kj) (Key.to_hex kb)
        (Format.asprintf "%a" Key.pp_cmp c_thm) d_thm
        (Format.asprintf "%a" Key.pp_cmp c_true) d_true
  end

let prop_theorem g seed =
  let rng = Prng.create (Int64.of_int seed) in
  let len = 1 + Prng.int rng 6 in
  (* Small alphabet maximises shared prefixes and offset collisions. *)
  let rand_key () = Bytes.init len (fun _ -> Char.chr (Prng.int rng 4)) in
  for _ = 1 to 20 do
    check_theorem g (rand_key ()) (rand_key ()) (rand_key ())
  done;
  true

(* {2 compare_partkey soundness}

   Simulate the exact chain a node sweep performs: sorted keys
   k0 < k1 < ... all above a base key; the search key is also above the
   base.  Walk the chain with compare_partkey and verify every definite
   answer (and its difference offset) against ground truth. *)

let run_chain g ~l_bytes ~base ~keys ~search =
  let rel = ref Key.Gt in
  let c0, d0 = Partial_key.diff g search base in
  if c0 <> Key.Gt then invalid_arg "run_chain: search must exceed base";
  let off = ref d0 in
  let stopped = ref false in
  Array.iteri
    (fun i k ->
      if not !stopped then begin
      let kb = if i = 0 then base else keys.(i - 1) in
      let pk = Partial_key.encode g ~l_bytes ~base:kb ~key:k in
      let c, o = Pk_compare.compare_partkey g ~search ~pk ~rel:!rel ~off:!off in
      let c_true, d_true = Partial_key.diff g search k in
      (match c with
      | Key.Lt | Key.Gt ->
          if c <> c_true then
            Alcotest.failf "entry %d: claimed %a, truth %a (search=%s key=%s base=%s)" i
              Key.pp_cmp c Key.pp_cmp c_true (Key.to_hex search) (Key.to_hex k) (Key.to_hex kb);
          if o <> d_true then
            Alcotest.failf "entry %d: claimed offset %d, truth %d" i o d_true
      | Key.Eq ->
          (* Unresolved: the claimed agreement must hold. *)
          if c_true <> Key.Eq && d_true < o then
            Alcotest.failf "entry %d: claims agreement on %d units but keys differ at %d" i o
              d_true);
      (* Advance the chain exactly as FINDNODE would; a definite Lt
         ends the sweep (the state is relative to this key's base). *)
      match c with
      | Key.Gt ->
          rel := Key.Gt;
          off := o
      | Key.Eq ->
          rel := Key.Eq;
          off := o
      | Key.Lt -> stopped := true
      end)
    keys

let prop_chain g ~l_bytes seed =
  let rng = Prng.create (Int64.of_int seed) in
  let len = 2 + Prng.int rng 5 in
  let alphabet = 2 + Prng.int rng 3 in
  let n = 3 + Prng.int rng 12 in
  let pool =
    try Pk_keys.Keygen.uniform ~rng ~key_len:len ~alphabet (n + 2)
    with Invalid_argument _ -> [||]
  in
  if Array.length pool = 0 then true
  else begin
    Array.sort Key.compare pool;
    let base = pool.(0) in
    let keys = Array.sub pool 1 (Array.length pool - 2) in
    (* Search key: above base; sometimes one of the indexed keys. *)
    let search =
      if Prng.bool rng then keys.(Prng.int rng (Array.length keys))
      else pool.(1 + Prng.int rng (Array.length pool - 1))
    in
    run_chain g ~l_bytes ~base ~keys ~search;
    true
  end

(* {2 Example 3.2 from the paper}

   Node keys (5-bit values placed in the high bits of one byte),
   l = 1 bit, base 00101, search 10111.  The expected comparison
   sequence is [EQ,2],[EQ,2],[GT,3],[GT,3],[LT,1] with no dereference
   needed by FINDNODE. *)

let example_32_node () =
  let base = byte_key "00101" in
  let keys = [| "10001"; "10010"; "10100"; "10101"; "11000" |] in
  (base, Array.map byte_key keys)

let test_example_32_sequence () =
  let base, keys = example_32_node () in
  let search = byte_key "10111" in
  let g = Partial_key.Bit in
  (* Offsets of each key versus its predecessor, as in Figure 4. *)
  let expected_offsets = [| 0; 3; 2; 4; 1 |] in
  Array.iteri
    (fun i k ->
      let kb = if i = 0 then base else keys.(i - 1) in
      let pk = Partial_key.encode g ~l_bytes:1 ~base:kb ~key:k in
      Alcotest.(check int) (Printf.sprintf "pkOffset[%d]" i) expected_offsets.(i) pk.Partial_key.pk_off)
    keys;
  let results = ref [] in
  let rel = ref Key.Gt and off = ref 0 in
  let _, d0 = Partial_key.diff g search base in
  off := d0;
  Alcotest.(check int) "d(search, base) = 0" 0 d0;
  Array.iteri
    (fun i k ->
      let kb = if i = 0 then base else keys.(i - 1) in
      (* l = 1 bit *)
      let pk =
        Partial_key.encode g ~l_bytes:1 ~base:kb ~key:k
      in
      let pk = { pk with Partial_key.pk_len = min pk.Partial_key.pk_len 1;
                 pk_bits = (if pk.Partial_key.pk_len = 0 then Bytes.empty
                            else Bytes.make 1 (Char.chr (Char.code (Bytes.get pk.Partial_key.pk_bits 0) land 0x80))) } in
      let c, o = Pk_compare.compare_partkey g ~search ~pk ~rel:!rel ~off:!off in
      results := (c, o) :: !results;
      (match c with
      | Key.Gt | Key.Eq ->
          rel := c;
          off := o
      | Key.Lt -> ()))
    keys;
  let got = List.rev !results in
  let expected = [ (Key.Eq, 2); (Key.Eq, 2); (Key.Gt, 3); (Key.Gt, 3); (Key.Lt, 1) ] in
  List.iteri
    (fun i ((gc, go), (ec, eo)) ->
      Alcotest.check Support.cmp_testable (Printf.sprintf "cmp[%d]" i) ec gc;
      Alcotest.(check int) (Printf.sprintf "off[%d]" i) eo go)
    (List.combine got expected)

(* {2 encode/encode_initial edge cases} *)

let test_encode_bit () =
  let base = byte_key "00101" and key = byte_key "10001" in
  let pk = Partial_key.encode Partial_key.Bit ~l_bytes:1 ~base ~key in
  Alcotest.(check int) "offset" 0 pk.Partial_key.pk_off;
  Alcotest.(check int) "len clamped to remaining bits" 7 pk.Partial_key.pk_len;
  (* bits 1..7 of 10001000 = 0001000 -> packed 00010000 *)
  Alcotest.(check string) "bits" "10" (Key.to_hex pk.Partial_key.pk_bits)

let test_encode_byte () =
  let base = Bytes.of_string "abcd" and key = Bytes.of_string "abzz" in
  let pk = Partial_key.encode Partial_key.Byte ~l_bytes:2 ~base ~key in
  Alcotest.(check int) "offset" 2 pk.Partial_key.pk_off;
  Alcotest.(check int) "len" 2 pk.Partial_key.pk_len;
  Alcotest.(check string) "stores the difference byte onward" "zz"
    (Bytes.to_string pk.Partial_key.pk_bits)

let test_encode_byte_clamps_at_end () =
  let base = Bytes.of_string "abc" and key = Bytes.of_string "abd" in
  let pk = Partial_key.encode Partial_key.Byte ~l_bytes:4 ~base ~key in
  Alcotest.(check int) "offset" 2 pk.Partial_key.pk_off;
  Alcotest.(check int) "len clamped" 1 pk.Partial_key.pk_len

let test_encode_equal_rejected () =
  let k = Bytes.of_string "same" in
  Alcotest.check_raises "equal keys" (Invalid_argument "Partial_key.encode: key equals base")
    (fun () -> ignore (Partial_key.encode Partial_key.Byte ~l_bytes:2 ~base:k ~key:k))

let test_encode_initial () =
  let key = Bytes.of_string "\x00\x41\x42" in
  let pk = Partial_key.encode_initial Partial_key.Byte ~l_bytes:2 ~key in
  Alcotest.(check int) "first nonzero byte" 1 pk.Partial_key.pk_off;
  Alcotest.(check string) "value bytes" "AB" (Bytes.to_string pk.Partial_key.pk_bits);
  let zero = Bytes.make 3 '\000' in
  let pk0 = Partial_key.encode_initial Partial_key.Byte ~l_bytes:2 ~key:zero in
  Alcotest.(check int) "all-zero key degenerates" 3 pk0.Partial_key.pk_off;
  Alcotest.(check int) "nothing stored" 0 pk0.Partial_key.pk_len

let test_initial_state () =
  let c, d = Partial_key.initial_state Partial_key.Byte (Bytes.of_string "\x00\x07") in
  Alcotest.check Support.cmp_testable "gt" Key.Gt c;
  Alcotest.(check int) "offset" 1 d;
  let c2, d2 = Partial_key.initial_state Partial_key.Bit (Bytes.of_string "\x00\x07") in
  Alcotest.check Support.cmp_testable "gt bit" Key.Gt c2;
  Alcotest.(check int) "bit offset" 13 d2;
  let c3, d3 = Partial_key.initial_state Partial_key.Byte (Bytes.make 2 '\000') in
  Alcotest.check Support.cmp_testable "all zero is Eq" Key.Eq c3;
  Alcotest.(check int) "agrees everywhere" 2 d3

let test_units_and_prefix () =
  let k = Bytes.of_string "abcd" in
  Alcotest.(check int) "bits" 32 (Partial_key.units_of_key Partial_key.Bit k);
  Alcotest.(check int) "bytes" 4 (Partial_key.units_of_key Partial_key.Byte k);
  Alcotest.(check int) "l bits" 16 (Partial_key.l_units Partial_key.Bit ~l_bytes:2);
  Alcotest.(check int) "l bytes" 2 (Partial_key.l_units Partial_key.Byte ~l_bytes:2);
  let pk = { Partial_key.pk_off = 5; pk_len = 3; pk_bits = Bytes.empty } in
  Alcotest.(check int) "byte prefix" 8 (Partial_key.reconstructed_prefix_units Partial_key.Byte pk);
  Alcotest.(check int) "bit prefix adds implied bit" 9
    (Partial_key.reconstructed_prefix_units Partial_key.Bit pk)

(* {2 resolve_by_offset decision table} *)

let test_resolve_by_offset_table () =
  let resolved c o = Pk_compare.Resolved (c, o) in
  let check name got want =
    Alcotest.(check bool) name true (got = want)
  in
  check "gt, pk earlier flips" (Pk_compare.resolve_by_offset ~rel:Key.Gt ~off:5 ~pk_off:3)
    (resolved Key.Lt 3);
  check "lt, pk earlier flips" (Pk_compare.resolve_by_offset ~rel:Key.Lt ~off:5 ~pk_off:3)
    (resolved Key.Gt 3);
  check "gt, pk later keeps" (Pk_compare.resolve_by_offset ~rel:Key.Gt ~off:2 ~pk_off:7)
    (resolved Key.Gt 2);
  check "lt, pk later keeps" (Pk_compare.resolve_by_offset ~rel:Key.Lt ~off:2 ~pk_off:7)
    (resolved Key.Lt 2);
  check "tie needs units" (Pk_compare.resolve_by_offset ~rel:Key.Gt ~off:4 ~pk_off:4)
    Pk_compare.Need_units;
  check "eq, pk earlier is Lt" (Pk_compare.resolve_by_offset ~rel:Key.Eq ~off:6 ~pk_off:2)
    (resolved Key.Lt 2);
  check "eq, pk later unresolved" (Pk_compare.resolve_by_offset ~rel:Key.Eq ~off:3 ~pk_off:8)
    (resolved Key.Eq 3);
  check "eq tie needs units" (Pk_compare.resolve_by_offset ~rel:Key.Eq ~off:3 ~pk_off:3)
    Pk_compare.Need_units

let () =
  Alcotest.run "pk_partialkey"
    [
      ( "theorem-3.1",
        [
          Support.seeded_qtest ~count:400 "bit granularity" (prop_theorem Partial_key.Bit);
          Support.seeded_qtest ~count:400 "byte granularity" (prop_theorem Partial_key.Byte);
        ] );
      ( "compare-chain",
        [
          Support.seeded_qtest ~count:300 "bit l=1" (prop_chain Partial_key.Bit ~l_bytes:1);
          Support.seeded_qtest ~count:300 "bit l=2" (prop_chain Partial_key.Bit ~l_bytes:2);
          Support.seeded_qtest ~count:300 "bit l=0 (Bit-Tree mode)"
            (prop_chain Partial_key.Bit ~l_bytes:0);
          Support.seeded_qtest ~count:300 "byte l=1" (prop_chain Partial_key.Byte ~l_bytes:1);
          Support.seeded_qtest ~count:300 "byte l=2" (prop_chain Partial_key.Byte ~l_bytes:2);
          Support.seeded_qtest ~count:300 "byte l=4" (prop_chain Partial_key.Byte ~l_bytes:4);
        ] );
      ( "example-3.2",
        [ Alcotest.test_case "comparison sequence" `Quick test_example_32_sequence ] );
      ( "encode",
        [
          Alcotest.test_case "bit encode" `Quick test_encode_bit;
          Alcotest.test_case "byte encode" `Quick test_encode_byte;
          Alcotest.test_case "byte clamp at key end" `Quick test_encode_byte_clamps_at_end;
          Alcotest.test_case "equal keys rejected" `Quick test_encode_equal_rejected;
          Alcotest.test_case "initial encode" `Quick test_encode_initial;
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "units and prefixes" `Quick test_units_and_prefix;
        ] );
      ( "resolve-by-offset",
        [ Alcotest.test_case "decision table" `Quick test_resolve_by_offset_table ] );
    ]
