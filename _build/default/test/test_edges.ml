(* Degenerate-input and failure-injection tests: boundary keys the
   partial-key machinery finds hardest (all-zero keys, one-byte keys,
   minimal alphabets, adversarial bit patterns). *)

module Key = Pk_keys.Key
module Keygen = Pk_keys.Keygen
module Prng = Pk_util.Prng
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Record_store = Pk_records.Record_store
module Partial_key = Pk_partialkey.Partial_key

let schemes_under_test =
  [
    ("pk-byte-2", Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 });
    ("pk-bit-1", Layout.Partial { granularity = Partial_key.Bit; l_bytes = 1 });
    ("pk-byte-0", Layout.Partial { granularity = Partial_key.Byte; l_bytes = 0 });
    ("pk-bit-0", Layout.Partial { granularity = Partial_key.Bit; l_bytes = 0 });
    ("indirect", Layout.Indirect);
  ]

let both_structures = [ Index.B_tree; Index.T_tree ]

let with_index scheme structure f =
  let mem, records = Support.make_env () in
  let ix = Index.make structure scheme mem records in
  f ix records

let insert ix records k =
  let rid = Record_store.insert records ~key:k ~payload:Bytes.empty in
  ix.Pk_core.Index.insert k ~rid

(* The all-zero key is the virtual base of the partial-key encoding
   (initial_state / encode_initial): it must be indexable and findable
   wherever it lands in the insertion order. *)
let test_all_zero_key () =
  List.iter
    (fun structure ->
      List.iter
        (fun (name, scheme) ->
          with_index scheme structure (fun ix records ->
              let zero = Bytes.make 6 '\000' in
              let rng = Prng.create 9L in
              let others = Keygen.uniform ~rng ~key_len:6 ~alphabet:17 500 in
              (* zero key first *)
              Alcotest.(check bool) (name ^ " zero first") true (insert ix records zero);
              Array.iter (fun k -> ignore (insert ix records k)) others;
              ix.Pk_core.Index.validate ();
              Alcotest.(check bool) (name ^ " zero found") true
                (ix.Pk_core.Index.lookup zero <> None);
              Array.iter
                (fun k ->
                  if ix.Pk_core.Index.lookup k = None then
                    Alcotest.failf "%s: lost %s" name (Key.to_hex k))
                others;
              (* zero key must also be the first in iteration order *)
              (match List.of_seq (Seq.take 1 (ix.Pk_core.Index.seq_from (Bytes.make 6 '\000'))) with
              | [ (k, _) ] when Key.equal k zero -> ()
              | _ -> Alcotest.failf "%s: zero key not first" name);
              Alcotest.(check bool) (name ^ " zero delete") true (ix.Pk_core.Index.delete zero);
              ix.Pk_core.Index.validate ()))
        schemes_under_test)
    both_structures

(* One-byte keys exercise minimal difference offsets and the full
   0..255 byte range including 0x00 and 0xff. *)
let test_one_byte_keys () =
  List.iter
    (fun structure ->
      List.iter
        (fun (name, scheme) ->
          with_index scheme structure (fun ix records ->
              let keys = Array.init 256 (fun i -> Bytes.make 1 (Char.chr i)) in
              let shuffled = Support.shuffled ~seed:4 keys in
              Array.iter (fun k -> ignore (insert ix records k)) shuffled;
              ix.Pk_core.Index.validate ();
              Alcotest.(check int) (name ^ " all 256") 256 (ix.Pk_core.Index.count ());
              Array.iter
                (fun k ->
                  if ix.Pk_core.Index.lookup k = None then
                    Alcotest.failf "%s: lost byte %s" name (Key.to_hex k))
                keys;
              (* ascending iteration covers 0x00..0xff in order *)
              let got = List.of_seq (ix.Pk_core.Index.seq_from (Bytes.make 1 '\000')) in
              List.iteri
                (fun i (k, _) ->
                  if Char.code (Bytes.get k 0) <> i then
                    Alcotest.failf "%s: order broken at %d" name i)
                got))
        schemes_under_test)
    both_structures

(* Alphabet of 2 at bit granularity: maximal offset collisions, the
   partial-key worst case. *)
let test_binary_alphabet () =
  List.iter
    (fun (name, scheme) ->
      with_index scheme Index.B_tree (fun ix records ->
          let rng = Prng.create 5L in
          let keys = Keygen.uniform ~rng ~key_len:16 ~alphabet:2 4000 in
          Array.iter (fun k -> ignore (insert ix records k)) keys;
          ix.Pk_core.Index.validate ();
          Array.iter
            (fun k ->
              if ix.Pk_core.Index.lookup k = None then
                Alcotest.failf "%s: lost %s" name (Key.to_hex k))
            keys))
    schemes_under_test

(* Keys straddling a power of two: §3.1 notes adjacent keys can share
   almost no prefix ("on either side of a large power of two"). *)
let test_power_of_two_straddle () =
  List.iter
    (fun (name, scheme) ->
      with_index scheme Index.B_tree (fun ix records ->
          (* 0x00ff..., 0x0100...: difference at bit 7/8 boundaries *)
          let keys =
            List.concat_map
              (fun hi ->
                List.map
                  (fun lo ->
                    let k = Bytes.make 4 '\000' in
                    Bytes.set_uint16_be k 0 hi;
                    Bytes.set_uint16_be k 2 lo;
                    k)
                  [ 0x0000; 0x00ff; 0x0100; 0xff00; 0xffff ])
              [ 0x00ff; 0x0100; 0x01ff; 0x0200; 0x7fff; 0x8000 ]
          in
          List.iter (fun k -> ignore (insert ix records k)) keys;
          ix.Pk_core.Index.validate ();
          List.iter
            (fun k ->
              if ix.Pk_core.Index.lookup k = None then
                Alcotest.failf "%s: lost %s" name (Key.to_hex k))
            keys))
    schemes_under_test

(* Deleting down to one key and back up, repeatedly, shakes out
   root-collapse bookkeeping. *)
let test_shrink_grow_cycles () =
  with_index (Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 }) Index.B_tree
    (fun ix records ->
      let keys = Keygen.sequential ~key_len:8 ~start:0 300 in
      for cycle = 1 to 4 do
        Array.iter (fun k -> ignore (insert ix records k)) keys;
        ix.Pk_core.Index.validate ();
        Array.iteri
          (fun i k -> if i > 0 then ignore (ix.Pk_core.Index.delete k))
          keys;
        ix.Pk_core.Index.validate ();
        Alcotest.(check int) (Printf.sprintf "cycle %d leaves one" cycle) 1
          (ix.Pk_core.Index.count ());
        ignore (ix.Pk_core.Index.delete keys.(0))
      done)

(* A record whose payload is large still keeps its key reachable. *)
let test_large_payloads () =
  with_index (Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 }) Index.T_tree
    (fun ix records ->
      let rng = Prng.create 6L in
      let keys = Keygen.uniform ~rng ~key_len:10 ~alphabet:50 200 in
      Array.iter
        (fun k ->
          let rid = Record_store.insert records ~key:k ~payload:(Bytes.make 4000 'x') in
          assert (ix.Pk_core.Index.insert k ~rid))
        keys;
      ix.Pk_core.Index.validate ();
      Array.iter
        (fun k ->
          match ix.Pk_core.Index.lookup k with
          | Some rid ->
              Alcotest.(check int) "payload intact" 4000
                (Bytes.length (Record_store.read_payload records rid))
          | None -> Alcotest.fail "lost key with large payload")
        keys)

let () =
  Alcotest.run "pk_edges"
    [
      ( "degenerate-keys",
        [
          Alcotest.test_case "all-zero key" `Quick test_all_zero_key;
          Alcotest.test_case "one-byte keys (0x00..0xff)" `Quick test_one_byte_keys;
          Alcotest.test_case "binary alphabet" `Quick test_binary_alphabet;
          Alcotest.test_case "power-of-two straddles" `Quick test_power_of_two_straddle;
        ] );
      ( "stress",
        [
          Alcotest.test_case "shrink/grow cycles" `Quick test_shrink_grow_cycles;
          Alcotest.test_case "large payloads" `Quick test_large_payloads;
        ] );
    ]
