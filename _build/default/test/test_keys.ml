(* Tests for Key, Bitops and Keygen. *)

module Key = Pk_keys.Key
module Bitops = Pk_keys.Bitops
module Keygen = Pk_keys.Keygen
module Prng = Pk_util.Prng

let b = Bytes.of_string

let test_compare_detail () =
  let check name a bb exp_cmp exp_d =
    let c, d = Key.compare_detail (b a) (b bb) in
    Alcotest.check Support.cmp_testable (name ^ " cmp") exp_cmp c;
    Alcotest.(check int) (name ^ " diff") exp_d d
  in
  check "equal" "abc" "abc" Key.Eq 3;
  check "lt at 0" "abc" "bbc" Key.Lt 0;
  check "gt at 2" "abz" "abc" Key.Gt 2;
  check "prefix lt" "ab" "abc" Key.Lt 2;
  check "prefix gt" "abc" "ab" Key.Gt 2;
  check "empty vs empty" "" "" Key.Eq 0;
  check "empty vs x" "" "x" Key.Lt 0

let test_compare_bit_detail () =
  let check name a bb exp_cmp exp_d =
    let c, d = Key.compare_bit_detail (b a) (b bb) in
    Alcotest.check Support.cmp_testable (name ^ " cmp") exp_cmp c;
    Alcotest.(check int) (name ^ " diff") exp_d d
  in
  (* 'a' = 0x61 = 01100001, 'c' = 0x63 = 01100011: differ at bit 6. *)
  check "bit 6" "a" "c" Key.Lt 6;
  (* 0x80 vs 0x00: bit 0 *)
  let c, d = Key.compare_bit_detail (Bytes.make 1 '\x80') (Bytes.make 1 '\x00') in
  Alcotest.check Support.cmp_testable "msb cmp" Key.Gt c;
  Alcotest.(check int) "msb diff" 0 d;
  check "second byte" "aa" "ab" Key.Lt (8 + 6);
  check "equal keys" "zz" "zz" Key.Eq 16

let test_sub_compare () =
  let k = b "hello" and o = b "helpo" in
  let c, d = Key.sub_compare k ~from:3 o in
  Alcotest.check Support.cmp_testable "lt" Key.Lt c;
  Alcotest.(check int) "diff at 3" 3 d;
  let c2, d2 = Key.sub_compare k ~from:0 (b "hello") in
  Alcotest.check Support.cmp_testable "eq" Key.Eq c2;
  Alcotest.(check int) "eq len" 5 d2

let test_flip () =
  Alcotest.check Support.cmp_testable "flip lt" Key.Gt (Key.flip Key.Lt);
  Alcotest.check Support.cmp_testable "flip gt" Key.Lt (Key.flip Key.Gt);
  Alcotest.check Support.cmp_testable "flip eq" Key.Eq (Key.flip Key.Eq)

let test_get_bit () =
  let k = Bytes.make 2 '\000' in
  Bytes.set k 0 '\x80';
  Bytes.set k 1 '\x01';
  Alcotest.(check int) "bit 0" 1 (Bitops.get_bit k 0);
  Alcotest.(check int) "bit 1" 0 (Bitops.get_bit k 1);
  Alcotest.(check int) "bit 15" 1 (Bitops.get_bit k 15);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitops.get_bit") (fun () ->
      ignore (Bitops.get_bit k 16))

let test_first_diff_bit () =
  Alcotest.(check (option int)) "equal" None (Bitops.first_diff_bit (b "xy") (b "xy"));
  Alcotest.(check (option int)) "bit 6" (Some 6) (Bitops.first_diff_bit (b "a") (b "c"));
  (* "a" zero-padded vs "ab": second byte 0x00 vs 'b' = 0x62 = 01100010,
     first set bit at offset 1 within the byte -> bit 9. *)
  Alcotest.(check (option int))
    "length difference vs zero padding" (Some 9)
    (Bitops.first_diff_bit (b "a") (b "ab"));
  Alcotest.(check (option int)) "msb" (Some 0)
    (Bitops.first_diff_bit (Bytes.make 1 '\x80') (Bytes.make 1 '\x00'))

let test_extract_bits () =
  (* 0xB8 = 10111000 *)
  let k = Bytes.make 1 '\xB8' in
  let e = Bitops.extract_bits k ~bit_off:1 ~bit_len:4 in
  (* bits 1..4 = 0111 -> packed 0111_0000 = 0x70 *)
  Alcotest.(check string) "packed" "70" (Key.to_hex e);
  let none = Bitops.extract_bits k ~bit_off:3 ~bit_len:0 in
  Alcotest.(check int) "empty" 0 (Bytes.length none);
  (* beyond end reads zero *)
  let past = Bitops.extract_bits k ~bit_off:6 ~bit_len:8 in
  Alcotest.(check string) "zero padded" "00" (Key.to_hex past)

let test_compare_bits_at () =
  let k = Bytes.make 1 '\xB8' in
  (* 10111000 *)
  let packed = Bytes.make 1 '\xE0' in
  (* 111..... *)
  let c, i = Bitops.compare_bits_at k ~bit_off:2 ~packed ~bit_len:3 in
  (* k bits 2..4 = 111 = packed -> equal *)
  Alcotest.(check int) "equal" 0 c;
  Alcotest.(check int) "agree length" 3 i;
  let c2, i2 = Bitops.compare_bits_at k ~bit_off:1 ~packed ~bit_len:3 in
  (* k bits 1..3 = 011 vs 111: differ at rel 0, k smaller *)
  Alcotest.(check bool) "lt" true (c2 < 0);
  Alcotest.(check int) "at rel 0" 0 i2

let test_roundtrip_extract_compare seed =
  let rng = Prng.create (Int64.of_int seed) in
  let len = 1 + Prng.int rng 12 in
  let k = Bytes.init len (fun _ -> Char.chr (Prng.int rng 256)) in
  let off = Prng.int rng (8 * len) in
  let l = Prng.int rng (min 32 ((8 * len) - off + 1)) in
  let packed = Bitops.extract_bits k ~bit_off:off ~bit_len:l in
  let c, i = Bitops.compare_bits_at k ~bit_off:off ~packed ~bit_len:l in
  c = 0 && i = l

let test_keygen_uniform_properties () =
  let rng = Prng.create 99L in
  let keys = Keygen.uniform ~rng ~key_len:8 ~alphabet:12 2000 in
  Alcotest.(check int) "count" 2000 (Array.length keys);
  let seen = Hashtbl.create 4096 in
  Array.iter
    (fun k ->
      Alcotest.(check int) "length" 8 (Bytes.length k);
      if Hashtbl.mem seen k then Alcotest.fail "duplicate key";
      Hashtbl.add seen k ())
    keys;
  (* every byte is one of the 12 spread symbol values *)
  let valid = Hashtbl.create 12 in
  for s = 0 to 11 do
    Hashtbl.add valid (s * 256 / 12) ()
  done;
  Array.iter
    (fun k -> Bytes.iter (fun c -> if not (Hashtbl.mem valid (Char.code c)) then
        Alcotest.failf "byte %d not an alphabet symbol" (Char.code c)) k)
    keys

let test_keygen_deterministic () =
  let k1 = Keygen.uniform ~rng:(Prng.create 5L) ~key_len:6 ~alphabet:220 100 in
  let k2 = Keygen.uniform ~rng:(Prng.create 5L) ~key_len:6 ~alphabet:220 100 in
  Alcotest.(check bool) "same seed, same keys" true
    (Array.for_all2 Key.equal k1 k2)

let test_keygen_space_check () =
  Alcotest.(check bool) "too small a space rejected" true
    (try
       ignore (Keygen.uniform ~rng:(Prng.create 1L) ~key_len:1 ~alphabet:2 100);
       false
     with Invalid_argument _ -> true)

let test_keygen_sequential () =
  let keys = Keygen.sequential ~key_len:4 ~start:250 10 in
  Alcotest.(check int) "count" 10 (Array.length keys);
  Alcotest.(check string) "encodes big-endian" "000000fa" (Key.to_hex keys.(0));
  Alcotest.(check string) "carries across bytes" "00000100" (Key.to_hex keys.(6));
  for i = 1 to 9 do
    if Key.compare keys.(i - 1) keys.(i) >= 0 then Alcotest.fail "not ascending"
  done

let test_keygen_prefixed () =
  let rng = Prng.create 3L in
  let keys =
    Keygen.prefixed ~rng ~prefixes:[| "http://a/"; "http://bb/" |] ~suffix_len:6 ~alphabet:64 200
  in
  Array.iter
    (fun k ->
      let s = Key.to_string k in
      Alcotest.(check bool) "has prefix" true
        (String.length s >= 9
        && (String.sub s 0 9 = "http://a/" || String.sub s 0 10 = "http://bb/")))
    keys

let test_entropy_helpers () =
  Alcotest.(check int) "3.6 bits ~ 12" 12 (Keygen.alphabet_for_entropy 3.58);
  Alcotest.(check int) "paper low" 12 Keygen.paper_low;
  Alcotest.(check int) "paper high" 220 Keygen.paper_high;
  Alcotest.(check (float 0.01)) "entropy of 12" 3.58 (Keygen.entropy_of_alphabet 12);
  Alcotest.(check (float 0.01)) "entropy of 220" 7.78 (Keygen.entropy_of_alphabet 220);
  Alcotest.(check int) "clamped high" 256 (Keygen.alphabet_for_entropy 9.0);
  Alcotest.(check int) "clamped low" 2 (Keygen.alphabet_for_entropy 0.0)

let test_shuffle_permutation () =
  let arr = Array.init 100 (fun i -> i) in
  let rng = Prng.create 17L in
  let copy = Array.copy arr in
  Keygen.shuffle ~rng copy;
  Alcotest.(check bool) "moved" true (copy <> arr);
  Array.sort compare copy;
  Alcotest.(check bool) "same elements" true (copy = arr)

let test_segments_roundtrip () =
  let segs = [ Key.Fixed (b "\x00\x01"); Key.Var (b "hel\x00lo"); Key.Var (b "") ] in
  let enc = Key.encode_segments segs in
  let dec = Key.decode_segments ~arity:[ `Fixed 2; `Var; `Var ] enc in
  Alcotest.(check bool) "roundtrip" true (segs = dec)

let test_segments_order_preserving seed =
  let rng = Prng.create (Int64.of_int seed) in
  let rand_var () =
    Key.Var (Bytes.init (Prng.int rng 6) (fun _ -> Char.chr (Prng.int rng 4)))
  in
  let rand_fixed () = Key.Fixed (Bytes.init 2 (fun _ -> Char.chr (Prng.int rng 4))) in
  let a = [ rand_fixed (); rand_var (); rand_var () ] in
  let b' = [ rand_fixed (); rand_var (); rand_var () ] in
  let seg_bytes = function Key.Fixed x | Key.Var x -> x in
  let cmp_lists x y =
    compare (List.map seg_bytes x) (List.map seg_bytes y)
  in
  let expected = compare (cmp_lists a b') 0 in
  let got = compare (Key.compare (Key.encode_segments a) (Key.encode_segments b')) 0 in
  expected = got

let () =
  Alcotest.run "pk_keys"
    [
      ( "key",
        [
          Alcotest.test_case "compare_detail" `Quick test_compare_detail;
          Alcotest.test_case "compare_bit_detail" `Quick test_compare_bit_detail;
          Alcotest.test_case "sub_compare" `Quick test_sub_compare;
          Alcotest.test_case "flip" `Quick test_flip;
        ] );
      ( "bitops",
        [
          Alcotest.test_case "get_bit" `Quick test_get_bit;
          Alcotest.test_case "first_diff_bit" `Quick test_first_diff_bit;
          Alcotest.test_case "extract_bits" `Quick test_extract_bits;
          Alcotest.test_case "compare_bits_at" `Quick test_compare_bits_at;
          Support.seeded_qtest ~count:500 "extract/compare roundtrip" test_roundtrip_extract_compare;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "uniform properties" `Quick test_keygen_uniform_properties;
          Alcotest.test_case "deterministic" `Quick test_keygen_deterministic;
          Alcotest.test_case "space check" `Quick test_keygen_space_check;
          Alcotest.test_case "sequential" `Quick test_keygen_sequential;
          Alcotest.test_case "prefixed" `Quick test_keygen_prefixed;
          Alcotest.test_case "entropy helpers" `Quick test_entropy_helpers;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        ] );
      ( "segments",
        [
          Alcotest.test_case "roundtrip" `Quick test_segments_roundtrip;
          Support.seeded_qtest ~count:1000 "order preserving" test_segments_order_preserving;
        ] );
    ]
