(** Key-storage schemes and byte-exact entry layouts shared by the
    T-tree and B-tree families.

    Every index key entry starts with the 8-byte record pointer; what
    follows depends on the scheme (§1 of the paper):

    - {b Direct}: the full key value inline ([key_len] bytes).
    - {b Indirect}: nothing — the key is reached through the record
      pointer ([17]'s space-optimal design).
    - {b Partial}: fixed-size partial-key information —
      [pk_off:u16, pk_len:u8, pad:u8, pk_bits[l_bytes]]. *)

type scheme =
  | Direct of { key_len : int }
      (** Inline keys; the index only stores keys of exactly this
          length. *)
  | Indirect
  | Partial of { granularity : Pk_partialkey.Partial_key.granularity; l_bytes : int }

val scheme_tag : scheme -> string
(** ["direct" | "indirect" | "pk-bit-l2" ...] for reports. *)

val entry_size : scheme -> int

val rec_ptr : Pk_mem.Mem.region -> int -> int
(** Record pointer of the entry at address [a]. *)

val set_rec_ptr : Pk_mem.Mem.region -> int -> int -> unit

(** {1 Direct entries} *)

val read_direct_key : Pk_mem.Mem.region -> int -> key_len:int -> Pk_keys.Key.t
val write_direct_key : Pk_mem.Mem.region -> int -> Pk_keys.Key.t -> unit

val compare_direct :
  Pk_mem.Mem.region -> int -> key_len:int -> Pk_keys.Key.t -> Pk_keys.Key.cmp * int
(** [(c, d)] comparing the {e stored} key to the probe, byte detail;
    charges only the examined prefix. *)

(** {1 Partial entries} *)

val read_pk :
  Pk_mem.Mem.region -> int -> granularity:Pk_partialkey.Partial_key.granularity ->
  Pk_partialkey.Partial_key.t
(** Reads all three fields (including the live value bytes). *)

val read_pk_off : Pk_mem.Mem.region -> int -> int
val read_pk_len : Pk_mem.Mem.region -> int -> int

val read_pk_first_byte : Pk_mem.Mem.region -> int -> int
(** First stored value byte, [-1] when [pk_len = 0] (used as the
    FINDBITTREE branch unit at byte granularity). *)

val write_pk : Pk_mem.Mem.region -> int -> l_bytes:int -> Pk_partialkey.Partial_key.t -> unit

val resolve_pk_units :
  Pk_mem.Mem.region ->
  int ->
  scheme_granularity:Pk_partialkey.Partial_key.granularity ->
  search:Pk_keys.Key.t ->
  rel:Pk_keys.Key.cmp ->
  off:int ->
  Pk_keys.Key.cmp * int
(** {!val:Pk_partialkey.Pk_compare.resolve_by_units} reading the stored
    bits straight from the entry (charging them). *)
