lib/core/prefix_btree.mli: Pk_keys Pk_mem Pk_records Seq
