lib/core/hybrid.ml: Index Layout Pk_partialkey
