lib/core/hybrid.mli: Index Layout Pk_mem Pk_partialkey Pk_records
