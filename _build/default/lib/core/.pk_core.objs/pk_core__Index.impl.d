lib/core/index.ml: Btree Layout Pk_keys Pk_partialkey Prefix_btree Seq Ttree
