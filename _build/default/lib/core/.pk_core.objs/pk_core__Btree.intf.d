lib/core/btree.mli: Layout Pk_keys Pk_mem Pk_records Seq
