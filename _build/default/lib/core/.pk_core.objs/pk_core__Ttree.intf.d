lib/core/ttree.mli: Layout Pk_keys Pk_mem Pk_records Seq
