lib/core/prefix_btree.ml: Array Bytes List Pk_arena Pk_keys Pk_mem Pk_records Printf Seq String
