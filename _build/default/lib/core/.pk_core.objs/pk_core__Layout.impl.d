lib/core/layout.ml: Bytes Pk_keys Pk_mem Pk_partialkey Printf
