lib/core/layout.mli: Pk_keys Pk_mem Pk_partialkey
