lib/core/ttree.ml: Array Bytes Char Layout Pk_arena Pk_keys Pk_mem Pk_partialkey Pk_records Printf Seq
