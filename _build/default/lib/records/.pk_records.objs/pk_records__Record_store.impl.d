lib/records/record_store.ml: Bytes Char Pk_arena Pk_keys Pk_mem
