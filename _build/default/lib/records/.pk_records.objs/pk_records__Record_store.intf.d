lib/records/record_store.mli: Pk_keys Pk_mem
