type t = {
  arena_name : string;
  mutable data : Bytes.t;
  mutable used : int;
  mutable freed : int; (* bytes currently sitting in free lists *)
  free_lists : (int, int list ref) Hashtbl.t; (* size -> offsets *)
}

let null = 0

let create ?(initial_capacity = 64 * 1024) ~name () =
  let cap = Stdlib.max initial_capacity 64 in
  {
    arena_name = name;
    data = Bytes.make cap '\000';
    (* Offset 0 is burned (with 7 pad bytes) so that 0 can serve as the
       null pointer in node link fields. *)
    used = 8;
    freed = 0;
    free_lists = Hashtbl.create 16;
  }

let name t = t.arena_name
let used_bytes t = t.used
let live_bytes t = t.used - t.freed
let capacity t = Bytes.length t.data

let grow_to t want =
  let cap = ref (Bytes.length t.data) in
  while !cap < want do
    cap := !cap * 2
  done;
  if !cap > Bytes.length t.data then begin
    let bigger = Bytes.make !cap '\000' in
    Bytes.blit t.data 0 bigger 0 t.used;
    t.data <- bigger
  end

let align_up off align = (off + align - 1) land lnot (align - 1)

let alloc t ?(align = 8) size =
  if size <= 0 then invalid_arg "Arena.alloc: size <= 0";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Arena.alloc: align must be a positive power of two";
  match Hashtbl.find_opt t.free_lists size with
  | Some ({ contents = off :: rest } as cell) ->
      cell := rest;
      t.freed <- t.freed - size;
      off
  | Some _ | None ->
      let off = align_up t.used align in
      grow_to t (off + size);
      t.used <- off + size;
      off

let fill t ~off ~len c = Bytes.fill t.data off len c

let free t off size =
  if off = null then invalid_arg "Arena.free: null";
  fill t ~off ~len:size '\000';
  t.freed <- t.freed + size;
  match Hashtbl.find_opt t.free_lists size with
  | Some cell -> cell := off :: !cell
  | None -> Hashtbl.add t.free_lists size (ref [ off ])

let get_u8 t off = Char.code (Bytes.get t.data off)
let set_u8 t off v = Bytes.set t.data off (Char.chr (v land 0xff))
let get_u16 t off = Bytes.get_uint16_le t.data off
let set_u16 t off v = Bytes.set_uint16_le t.data off (v land 0xffff)

let get_u32 t off = Int32.to_int (Bytes.get_int32_le t.data off) land 0xffffffff
let set_u32 t off v = Bytes.set_int32_le t.data off (Int32.of_int v)

let get_u64 t off = Int64.to_int (Bytes.get_int64_le t.data off)
let set_u64 t off v = Bytes.set_int64_le t.data off (Int64.of_int v)

let blit_from_bytes t ~src ~src_off ~dst_off ~len =
  Bytes.blit src src_off t.data dst_off len

let blit_to_bytes t ~src_off ~dst ~dst_off ~len =
  Bytes.blit t.data src_off dst dst_off len

let blit_within t ~src_off ~dst_off ~len =
  Bytes.blit t.data src_off t.data dst_off len

let compare_with_bytes t ~off b ~b_off ~len =
  let rec loop i =
    if i = len then 0
    else
      let a = Char.code (Bytes.unsafe_get t.data (off + i)) in
      let c = Char.code (Bytes.unsafe_get b (b_off + i)) in
      if a <> c then compare a c else loop (i + 1)
  in
  if off + len > Bytes.length t.data || b_off + len > Bytes.length b then
    invalid_arg "Arena.compare_with_bytes: out of bounds";
  loop 0

let sub_bytes t ~off ~len = Bytes.sub t.data off len
