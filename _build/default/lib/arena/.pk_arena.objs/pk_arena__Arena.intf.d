lib/arena/arena.mli:
