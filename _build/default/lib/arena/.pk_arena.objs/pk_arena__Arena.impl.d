lib/arena/arena.ml: Bytes Char Hashtbl Int32 Int64 Stdlib
