open Bechamel

let time_group ~name cases =
  let tests =
    List.map (fun (label, thunk) -> Test.make ~name:label (Staged.stage thunk)) cases
  in
  let grouped = Test.make_grouped ~name tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.6) ~kde:None ~stabilize:false () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols instance raw in
  List.map
    (fun (label, _) ->
      let full = name ^ "/" ^ label in
      let est =
        match Hashtbl.find_opt analyzed full with
        | Some o -> (
            match Analyze.OLS.estimates o with Some [ ns ] -> ns | Some _ | None -> Float.nan)
        | None -> Float.nan
      in
      (label, est))
    cases
