(** Bechamel wrapper: one [Test.make] per measured workload, OLS fit of
    monotonic-clock samples, nanoseconds per run. *)

val time_group : name:string -> (string * (unit -> unit)) list -> (string * float) list
(** [time_group ~name cases] benchmarks each [(label, thunk)] as a
    Bechamel test inside one grouped run and returns [(label, ns/run)]
    in the input order.  Thunks should perform one logical operation
    (e.g. one lookup from a rotating probe list). *)
