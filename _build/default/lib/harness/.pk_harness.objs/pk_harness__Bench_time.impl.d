lib/harness/bench_time.ml: Analyze Bechamel Benchmark Float Hashtbl List Measure Staged Test Time Toolkit
