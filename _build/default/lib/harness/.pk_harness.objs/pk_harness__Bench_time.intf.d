lib/harness/bench_time.mli:
