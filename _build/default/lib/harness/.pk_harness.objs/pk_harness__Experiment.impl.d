lib/harness/experiment.ml: List Option Printf String Sys Unix
