lib/harness/experiment.mli:
