(** Access distributions for workload drivers. *)

type t =
  | Uniform              (** Every key equally likely (the paper's workload). *)
  | Zipf of float        (** Zipfian with the given skew parameter (> 0). *)
  | Sequential           (** Round-robin ascending. *)

val pp : Format.formatter -> t -> unit

val sampler : t -> n:int -> rng:Pk_util.Prng.t -> unit -> int
(** [sampler d ~n ~rng] draws indexes in [\[0, n)].  Zipf uses an exact
    inverse-CDF table built once per sampler. *)
