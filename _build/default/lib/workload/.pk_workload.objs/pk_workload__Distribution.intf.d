lib/workload/distribution.mli: Format Pk_util
