lib/workload/workload.ml: Array Bytes Distribution Gc Int64 Pk_cachesim Pk_core Pk_keys Pk_mem Pk_records Pk_util Printf Unix
