lib/workload/distribution.ml: Array Float Format Pk_util
