lib/workload/workload.mli: Distribution Pk_cachesim Pk_core Pk_keys Pk_mem Pk_records
