module Prng = Pk_util.Prng

type t = Uniform | Zipf of float | Sequential

let pp ppf = function
  | Uniform -> Format.pp_print_string ppf "uniform"
  | Zipf s -> Format.fprintf ppf "zipf(%.2f)" s
  | Sequential -> Format.pp_print_string ppf "sequential"

let zipf_cdf ~n ~skew =
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) skew);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  Array.map (fun x -> x /. total) cdf

let sampler d ~n ~rng =
  if n <= 0 then invalid_arg "Distribution.sampler: n <= 0";
  match d with
  | Uniform -> fun () -> Prng.int rng n
  | Sequential ->
      let next = ref 0 in
      fun () ->
        let v = !next in
        next := (v + 1) mod n;
        v
  | Zipf skew ->
      if skew <= 0.0 then invalid_arg "Distribution.sampler: zipf skew <= 0";
      let cdf = zipf_cdf ~n ~skew in
      fun () ->
        let u = Prng.float rng 1.0 in
        (* first index whose cdf >= u *)
        let rec bsearch lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if cdf.(mid) < u then bsearch (mid + 1) hi else bsearch lo mid
        in
        bsearch 0 (n - 1)
