module Prng = Pk_util.Prng

let entropy_of_alphabet n = log (float_of_int n) /. log 2.0

let alphabet_for_entropy h =
  let n = int_of_float (Float.round (2.0 ** h)) in
  max 2 (min 256 n)

let paper_low = 12
let paper_high = 220

(* Spread alphabet symbol s in [0, a) across the byte range so that
   generated keys look like real text/codes rather than clustering near
   0; byte-wise ordering of symbols is preserved. *)
let symbol_byte ~alphabet s = s * 256 / alphabet

let check_space ~key_len ~alphabet n =
  (* log2 of the key-space size, saturating. *)
  let space_bits = float_of_int key_len *. entropy_of_alphabet alphabet in
  let need_bits = log (float_of_int (max 1 (2 * n))) /. log 2.0 in
  if space_bits < need_bits then
    invalid_arg
      (Printf.sprintf
         "Keygen: key space %d^%d cannot hold %d distinct keys" alphabet key_len n)

let distinct_fill n gen =
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n Bytes.empty in
  let i = ref 0 in
  while !i < n do
    let k = gen () in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out.(!i) <- k;
      incr i
    end
  done;
  out

let uniform ~rng ~key_len ~alphabet n =
  if key_len <= 0 then invalid_arg "Keygen.uniform: key_len <= 0";
  if alphabet < 2 || alphabet > 256 then invalid_arg "Keygen.uniform: alphabet out of range";
  check_space ~key_len ~alphabet n;
  let gen () =
    let k = Bytes.create key_len in
    for i = 0 to key_len - 1 do
      Bytes.set k i (Char.chr (symbol_byte ~alphabet (Prng.int rng alphabet)))
    done;
    k
  in
  distinct_fill n gen

let sequential ~key_len ~start n =
  if key_len <= 0 || key_len > 8 then
    invalid_arg "Keygen.sequential: key_len must be in [1,8]";
  Array.init n (fun i ->
      let v = start + i in
      let k = Bytes.create key_len in
      for b = 0 to key_len - 1 do
        Bytes.set k b (Char.chr ((v lsr (8 * (key_len - 1 - b))) land 0xff))
      done;
      k)

let prefixed ~rng ~prefixes ~suffix_len ~alphabet n =
  if Array.length prefixes = 0 then invalid_arg "Keygen.prefixed: no prefixes";
  let gen () =
    let p = prefixes.(Prng.int rng (Array.length prefixes)) in
    let plen = String.length p in
    let k = Bytes.create (plen + suffix_len) in
    Bytes.blit_string p 0 k 0 plen;
    for i = 0 to suffix_len - 1 do
      Bytes.set k (plen + i) (Char.chr (symbol_byte ~alphabet (Prng.int rng alphabet)))
    done;
    k
  in
  distinct_fill n gen

let shuffle ~rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
