(* Number of leading zeros in a byte value (clz8.(0) unused: callers
   only consult it for non-zero xor values). *)
let clz8 =
  let tbl = Array.make 256 8 in
  for v = 1 to 255 do
    let rec go n bit = if bit land v <> 0 then n else go (n + 1) (bit lsr 1) in
    tbl.(v) <- go 0 0x80
  done;
  tbl

let get_bit k i =
  if i < 0 || i >= 8 * Bytes.length k then invalid_arg "Bitops.get_bit";
  let byte = Char.code (Bytes.get k (i lsr 3)) in
  (byte lsr (7 - (i land 7))) land 1

let byte_or_zero k i = if i < Bytes.length k then Char.code (Bytes.get k i) else 0

let first_diff_bit a b =
  let n = max (Bytes.length a) (Bytes.length b) in
  let rec scan i =
    if i = n then None
    else
      let x = byte_or_zero a i lxor byte_or_zero b i in
      if x = 0 then scan (i + 1) else Some ((i * 8) + clz8.(x))
  in
  scan 0

(* Bit [i] of [k], with bits past the end reading as 0. *)
let bit_or_zero k i =
  let byte = byte_or_zero k (i lsr 3) in
  (byte lsr (7 - (i land 7))) land 1

let extract_bits k ~bit_off ~bit_len =
  if bit_off < 0 || bit_len < 0 then invalid_arg "Bitops.extract_bits";
  let out = Bytes.make ((bit_len + 7) / 8) '\000' in
  for i = 0 to bit_len - 1 do
    if bit_or_zero k (bit_off + i) = 1 then begin
      let byte = Char.code (Bytes.get out (i lsr 3)) in
      Bytes.set out (i lsr 3) (Char.chr (byte lor (0x80 lsr (i land 7))))
    end
  done;
  out

let compare_bits_at k ~bit_off ~packed ~bit_len =
  let rec go i =
    if i = bit_len then (0, bit_len)
    else
      let a = bit_or_zero k (bit_off + i) in
      let b = bit_or_zero packed i in
      if a <> b then ((if a < b then -1 else 1), i) else go (i + 1)
  in
  go 0
