(** Key-set generators with controlled per-byte Shannon entropy.

    §5.2 of the paper: "when each byte is selected uniformly from an
    alphabet of n symbols, each byte contains lg n bits of Shannon
    entropy".  The paper's two headline settings are byte entropies of
    3.6 bits (alphabet 12) and 7.8 bits (alphabet 220).  Keys are
    rejected if not unique, exactly as in the paper. *)

val alphabet_for_entropy : float -> int
(** [round(2^h)] clamped to [\[2, 256\]] — the alphabet whose per-byte
    entropy is closest to [h] bits.  Prefer {!val:paper_low} /
    {!val:paper_high} for the paper's exact alphabet sizes. *)

val entropy_of_alphabet : int -> float
(** [lg n]. *)

val paper_low : int
(** Alphabet 12 — 3.58 bits/byte, the paper's "3.6". *)

val paper_high : int
(** Alphabet 220 — 7.78 bits/byte, the paper's "7.8". *)

val uniform :
  rng:Pk_util.Prng.t -> key_len:int -> alphabet:int -> int -> Key.t array
(** [uniform ~rng ~key_len ~alphabet n] draws [n] distinct keys of
    [key_len] bytes, each byte an alphabet symbol spread evenly over
    0..255.  Raises [Invalid_argument] when the key space is too small
    to hold [n] distinct keys comfortably (space < 2n). *)

val sequential : key_len:int -> start:int -> int -> Key.t array
(** Big-endian counter keys [start, start+1, ...] padded to [key_len]:
    the adversarial low-entropy workload (long shared prefixes, diff
    bits clustered at the tail). *)

val prefixed :
  rng:Pk_util.Prng.t ->
  prefixes:string array ->
  suffix_len:int ->
  alphabet:int ->
  int ->
  Key.t array
(** URL/dictionary-style keys: a random prefix from [prefixes] followed
    by [suffix_len] random alphabet bytes; distinct.  Key lengths vary
    with the prefix — only for indexes that accept variable-length
    keys (indirect and partial-key schemes). *)

val shuffle : rng:Pk_util.Prng.t -> 'a array -> unit
(** In-place Fisher-Yates, for building lookup orders distinct from
    insertion orders. *)
