type t = bytes
type cmp = Lt | Eq | Gt

let cmp_of_int n = if n < 0 then Lt else if n > 0 then Gt else Eq
let int_of_cmp = function Lt -> -1 | Eq -> 0 | Gt -> 1
let flip = function Lt -> Gt | Gt -> Lt | Eq -> Eq

let pp_cmp ppf c =
  Format.pp_print_string ppf (match c with Lt -> "LT" | Eq -> "EQ" | Gt -> "GT")

let length = Bytes.length
let equal = Bytes.equal
let compare = Bytes.compare

let compare_detail a b =
  let la = Bytes.length a and lb = Bytes.length b in
  let common = min la lb in
  let rec scan i =
    if i = common then
      if la = lb then (Eq, common) else if la < lb then (Lt, common) else (Gt, common)
    else
      let x = Char.code (Bytes.unsafe_get a i) and y = Char.code (Bytes.unsafe_get b i) in
      if x <> y then ((if x < y then Lt else Gt), i) else scan (i + 1)
  in
  scan 0

let compare_bit_detail a b =
  match Bitops.first_diff_bit a b with
  | None -> (Eq, 8 * Bytes.length a)
  | Some d -> (cmp_of_int (Bytes.compare a b), d)

let sub_compare k ~from other =
  let la = Bytes.length k and lb = Bytes.length other in
  let common = min la lb in
  let rec scan i =
    if i >= common then
      if la = lb then (Eq, common) else if la < lb then (Lt, common) else (Gt, common)
    else
      let x = Char.code (Bytes.unsafe_get k i) and y = Char.code (Bytes.unsafe_get other i) in
      if x <> y then ((if x < y then Lt else Gt), i) else scan (i + 1)
  in
  scan from

let to_hex k =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (Bytes.to_seq k))))

let of_string = Bytes.of_string
let to_string = Bytes.to_string

type segment = Fixed of bytes | Var of bytes

let encode_segments segs =
  let buf = Buffer.create 32 in
  List.iter
    (fun seg ->
      match seg with
      | Fixed b -> Buffer.add_bytes buf b
      | Var b ->
          Bytes.iter
            (fun c ->
              Buffer.add_char buf c;
              (* Escape embedded NUL so the 0x00 terminator still sorts
                 below any continuation: 0x00 -> 0x00 0xFF. *)
              if c = '\000' then Buffer.add_char buf '\xff')
            b;
          Buffer.add_char buf '\000')
    segs;
  Buffer.to_bytes buf

let decode_segments ~arity k =
  let pos = ref 0 in
  let len = Bytes.length k in
  let take n =
    if !pos + n > len then invalid_arg "Key.decode_segments: truncated";
    let b = Bytes.sub k !pos n in
    pos := !pos + n;
    b
  in
  let take_var () =
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then invalid_arg "Key.decode_segments: unterminated Var";
      let c = Bytes.get k !pos in
      incr pos;
      if c = '\000' then
        if !pos < len && Bytes.get k !pos = '\xff' then begin
          incr pos;
          Buffer.add_char buf '\000';
          go ()
        end
        else ()
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ();
    Buffer.to_bytes buf
  in
  let segs =
    List.map
      (function `Fixed n -> Fixed (take n) | `Var -> Var (take_var ()))
      arity
  in
  if !pos <> len then invalid_arg "Key.decode_segments: trailing bytes";
  segs
