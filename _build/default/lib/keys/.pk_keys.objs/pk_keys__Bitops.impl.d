lib/keys/bitops.ml: Array Bytes Char
