lib/keys/key.mli: Format
