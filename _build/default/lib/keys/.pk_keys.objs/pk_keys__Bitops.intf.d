lib/keys/bitops.mli:
