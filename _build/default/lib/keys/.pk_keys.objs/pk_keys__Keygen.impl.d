lib/keys/keygen.ml: Array Bytes Char Float Hashtbl Pk_util Printf String
