lib/keys/keygen.mli: Key Pk_util
