lib/keys/key.ml: Bitops Buffer Bytes Char Format List Printf String
