(** Bit-level operations on byte-string keys.

    Bits are numbered in order of decreasing significance starting at
    bit 0, the most significant bit of byte 0 — the numbering of §3 of
    the paper.  A "packed bit string" stores bit [i] at bit
    [7 - i mod 8] of byte [i / 8], i.e. left-aligned. *)

val get_bit : bytes -> int -> int
(** [get_bit k i] is bit [i] of [k] (0 or 1).  Raises
    [Invalid_argument] when out of range. *)

val first_diff_bit : bytes -> bytes -> int option
(** Offset of the most significant bit at which the two byte strings
    differ; [None] when equal.  For operands of different lengths the
    shorter is treated as zero-padded — callers in this repository only
    compare equal-length keys. *)

val extract_bits : bytes -> bit_off:int -> bit_len:int -> bytes
(** [extract_bits k ~bit_off ~bit_len] copies bits
    [\[bit_off, bit_off+bit_len)] of [k] into a fresh packed bit string
    (left-aligned, zero-padded tail).  Bits beyond the end of [k] read
    as 0; [bit_len] may be 0. *)

val compare_bits_at :
  bytes -> bit_off:int -> packed:bytes -> bit_len:int -> int * int
(** [compare_bits_at k ~bit_off ~packed ~bit_len] compares the bit
    sequence of [k] starting at [bit_off] against the first [bit_len]
    bits of the packed bit string, bit by bit.  Returns [(cmp, i)]:
    [cmp] < 0, = 0, > 0, with [i] the index {e relative to [bit_off]} of
    the first differing bit ([= bit_len] when all [bit_len] bits agree,
    in which case [cmp = 0]).  Bits of [k] beyond its end read as 0. *)
