(** Keys: fixed-length byte strings with detailed comparisons.

    The paper models keys as unique, fixed-length sequences of unsigned
    bytes compared byte-wise (§5.2).  A key here is an immutable-by-
    convention [bytes] value.  Comparisons return both the ordering and
    the position of the first difference — the [d(k_i, k_j)] of §3.2 —
    at byte or bit granularity.

    Multi-segment keys (§3.2's extension) are supported through an
    order-preserving flat encoding: fixed-size segments are
    concatenated, variable-size segments are escaped (0x00 -> 0x00 0xFF)
    and 0x00-terminated, so ordinary byte-wise comparison of encoded
    keys equals lexicographic comparison of the segment tuples, and the
    partial-key machinery applies unchanged. *)

type t = bytes

type cmp = Lt | Eq | Gt
(** Comparison outcome, the paper's LT/EQ/GT. *)

val cmp_of_int : int -> cmp
val int_of_cmp : cmp -> int
val flip : cmp -> cmp
(** [flip Lt = Gt], [flip Gt = Lt], [flip Eq = Eq]. *)

val pp_cmp : Format.formatter -> cmp -> unit

val length : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
(** Plain lexicographic byte compare (shorter prefix sorts first). *)

val compare_detail : t -> t -> cmp * int
(** [(c, d)] where [d] is the index of the first differing {e byte}
    ([= min-length] when one key is a prefix of the other, or the
    common length when equal). *)

val compare_bit_detail : t -> t -> cmp * int
(** Same, with [d] the offset of the first differing {e bit} (paper's
    [d(k_i,k_j)]); [d = 8*length] when equal (equal lengths assumed for
    the bit view). *)

val sub_compare : t -> from:int -> t -> cmp * int
(** [sub_compare k ~from other] compares [k[from..]] against
    [other[from..]] byte-wise, returning the absolute index of the
    first difference.  Precondition: the keys agree on bytes
    [\[0, from)]. *)

val to_hex : t -> string
val of_string : string -> t
val to_string : t -> string

(** {1 Multi-segment encoding} *)

type segment =
  | Fixed of bytes   (** fixed-width field, compared raw *)
  | Var of bytes     (** variable-width field, escaped + terminated *)

val encode_segments : segment list -> t
(** Order-preserving encoding: comparing encodings byte-wise equals
    comparing segment lists (Fixed segments must have equal widths at
    equal positions for the order guarantee, as in a typed schema). *)

val decode_segments : arity:(([ `Fixed of int | `Var ]) list) -> t -> segment list
(** Inverse of [encode_segments] given the schema.  Raises
    [Invalid_argument] on malformed input. *)
