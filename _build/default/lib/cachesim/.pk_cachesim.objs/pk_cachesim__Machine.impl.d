lib/cachesim/machine.ml: Cachesim List Seq String
