lib/cachesim/machine.mli: Cachesim
