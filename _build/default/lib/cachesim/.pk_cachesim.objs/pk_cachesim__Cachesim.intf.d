lib/cachesim/cachesim.mli: Format
