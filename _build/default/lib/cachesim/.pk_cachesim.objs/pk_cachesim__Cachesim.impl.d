lib/cachesim/cachesim.ml: Array Format List Option
