(** Multi-level set-associative cache simulator.

    Substitutes for the UltraSPARC PerfMon hardware counters the paper
    used to measure L2 misses (§5.2): the index structures generate an
    explicit address trace through {!module:Pk_mem.Mem}, and this
    simulator replays it against a configurable memory hierarchy,
    yielding deterministic per-level hit/miss counts and a simulated
    access time in nanoseconds.

    Each level is a set-associative, write-allocate, LRU cache over
    physical block addresses.  An access that misses level [i] is
    looked up (and installed) in level [i+1]; a miss in the last level
    costs the DRAM latency.  The simulated time of one access is the
    latency of the first level that hits (latencies in
    {!type:level_config} are load-to-use totals, as in Table 2 of the
    paper).

    An optional TLB models virtual-to-physical translation caching;
    pages are contiguous in our flat address space, so the TLB is a
    fully-index-free LRU set of page numbers.  Superpages (§5.1) are
    modelled by a larger [page_bytes]. *)

type level_config = {
  level_name : string;  (** e.g. ["L1"]. *)
  size_bytes : int;     (** Total capacity; must be a multiple of [block_bytes * associativity]. *)
  block_bytes : int;    (** Cache-line size; power of two. *)
  associativity : int;  (** 1 = direct-mapped. *)
  latency_ns : float;   (** Load-to-use latency when this level hits. *)
}

type tlb_config = {
  entries : int;        (** Number of translations held (fully associative, LRU). *)
  page_bytes : int;     (** Page size; power of two.  Large values model superpages. *)
  miss_ns : float;      (** Penalty added on a TLB miss. *)
}

type config = {
  levels : level_config list;  (** Ordered nearest-first, e.g. [\[l1; l2\]]. *)
  dram_ns : float;             (** Latency when all levels miss. *)
  tlb : tlb_config option;
}

type level_counts = {
  name : string;
  accesses : int;
  hits : int;
  misses : int;
}

type snapshot = {
  per_level : level_counts array;
  tlb_accesses : int;
  tlb_misses : int;
  sim_ns : float;       (** Total simulated memory-access time. *)
  total_accesses : int; (** Number of block touches fed to the hierarchy. *)
}

type t

val create : config -> t
(** Build a simulator with cold caches.  Raises [Invalid_argument] on
    inconsistent geometry (non-power-of-two blocks, capacity not
    divisible by way size, empty level list). *)

val config : t -> config

val touch : t -> addr:int -> len:int -> unit
(** Simulate a read/write of [len] bytes starting at byte address
    [addr]: every distinct block overlapped is one access to the
    hierarchy.  [len = 0] touches nothing. *)

val flush : t -> unit
(** Invalidate all cached blocks and TLB entries (cold restart) without
    clearing statistics. *)

val reset_stats : t -> unit
(** Zero all counters; cache contents are kept (warm). *)

val snapshot : t -> snapshot
(** Current cumulative counters. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter deltas for a measurement window. *)

val misses : snapshot -> level:string -> int
(** Misses recorded at the named level; raises [Not_found] for an
    unknown level name. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
