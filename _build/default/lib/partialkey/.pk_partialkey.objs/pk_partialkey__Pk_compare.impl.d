lib/partialkey/pk_compare.ml: Bytes Char Partial_key Pk_keys
