lib/partialkey/pk_compare.mli: Partial_key Pk_keys
