lib/partialkey/node_search.mli: Pk_keys
