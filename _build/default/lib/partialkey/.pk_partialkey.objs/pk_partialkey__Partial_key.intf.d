lib/partialkey/partial_key.mli: Format Pk_keys
