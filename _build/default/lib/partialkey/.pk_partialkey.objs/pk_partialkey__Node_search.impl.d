lib/partialkey/node_search.ml: Pk_compare Pk_keys
