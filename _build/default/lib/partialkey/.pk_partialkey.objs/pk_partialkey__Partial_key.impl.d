lib/partialkey/partial_key.ml: Bytes Char Format Pk_keys
