module Key = Pk_keys.Key
module Bitops = Pk_keys.Bitops

type resolution = Resolved of Key.cmp * int | Need_units

let resolve_by_offset ~rel ~off ~pk_off =
  match rel with
  | Key.Lt | Key.Gt ->
      if pk_off < off then
        (* Theorem 3.1: the index key diverges from the base earlier
           than the search key does, so the index key sits on the far
           side: c(search, index) = c(base, search). *)
        Resolved (Key.flip rel, pk_off)
      else if pk_off > off then
        (* The index key shares more of the base than the search key:
           c(search, index) = c(search, base). *)
        Resolved (rel, off)
      else Need_units
  | Key.Eq ->
      if pk_off < off then
        (* The index key diverges from the (unresolved) base at
           [pk_off]; the search key agrees with that base past it.
           Since in-node keys ascend, the index key's unit there is
           greater: search < index (Appendix A case 2). *)
        Resolved (Key.Lt, pk_off)
      else if pk_off > off then
        (* Nothing new can be concluded (Appendix A case 1). *)
        Resolved (Key.Eq, off)
      else Need_units

let bits_of k = 8 * Bytes.length k

(* Bit of [k] at offset [i], 0 when past the end. *)
let bit_or_zero k i =
  if i >= bits_of k then 0
  else (Char.code (Bytes.get k (i lsr 3)) lsr (7 - (i land 7))) land 1

let resolve_units_bit ~search ~rel ~off ~pk_len ~pk_bits =
  (* The unit at [off] itself: for Lt/Gt states both keys flip the
     base's bit the same way, so it is equal and skipped (Fig. 3 notes
     the difference bit is never stored).  For Eq states the index
     key's bit is 1 (it is greater than its base) while the search
     key's is unknown (Appendix A case 3). *)
  let proceed_from = off + 1 in
  let check_stored () =
    let c, i = Bitops.compare_bits_at search ~bit_off:proceed_from ~packed:pk_bits ~bit_len:pk_len in
    if c <> 0 then (Key.cmp_of_int c, proceed_from + i) else (Key.Eq, proceed_from + pk_len)
  in
  match rel with
  | Key.Lt | Key.Gt -> check_stored ()
  | Key.Eq ->
      if off >= bits_of search then
        (* Search key exhausted at the implied bit: boundary case,
           degrade to unresolved. *)
        (Key.Eq, off)
      else if bit_or_zero search off = 0 then (Key.Lt, off)
      else check_stored ()

let resolve_units_byte ~search ~off ~pk_len ~pk_bits =
  (* Both keys agree on bytes [0, off); compare from [off] against the
     stored bytes (the first of which is the index key's difference
     byte, stored whole).  A search key ending inside the window is a
     proper prefix of the index key's known prefix, hence smaller. *)
  let slen = Bytes.length search in
  let rec go i =
    if i = pk_len then (Key.Eq, off + pk_len)
    else if off + i >= slen then (Key.Lt, off + i)
    else
      let s = Char.code (Bytes.get search (off + i)) in
      let j = Char.code (Bytes.get pk_bits i) in
      if s < j then (Key.Lt, off + i)
      else if s > j then (Key.Gt, off + i)
      else go (i + 1)
  in
  go 0

let resolve_by_units g ~search ~rel ~off ~pk_len ~pk_bits =
  match g with
  | Partial_key.Bit -> resolve_units_bit ~search ~rel ~off ~pk_len ~pk_bits
  | Partial_key.Byte -> resolve_units_byte ~search ~off ~pk_len ~pk_bits

let compare_partkey g ~search ~(pk : Partial_key.t) ~rel ~off =
  match resolve_by_offset ~rel ~off ~pk_off:pk.pk_off with
  | Resolved (c, o) -> (c, o)
  | Need_units ->
      resolve_by_units g ~search ~rel ~off ~pk_len:pk.pk_len ~pk_bits:pk.pk_bits
