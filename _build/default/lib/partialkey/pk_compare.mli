(** Partial-key comparison: procedure COMPAREPARTKEY (Fig. 3) with the
    EQ-propagation semantics of Appendix A.

    A comparison is driven by a {e state} [(rel, off)] describing what
    is known about the search key relative to the {e base key} of the
    index key about to be examined (the key visited immediately before
    it):

    - [rel = Lt | Gt]: the search key compared [rel] to the base key
      and [off = d(search, base)], the offset of their first differing
      unit.  The tree guarantees the index key compares the same way to
      the base ([c(k_j, k_b) = c(k_i, k_b)], §3.2), so Theorem 3.1
      applies.
    - [rel = Eq]: the previous comparison was {e unresolved}; the
      search key and the base key (that previous, still-unresolved
      index key) are known to agree on their first [off] units, the
      ordering is unknown, and the index key is greater than the base
      (in-node keys ascend).

    The result has the same shape: [Lt]/[Gt] are {e definite} orderings
    of search vs index key with [off = d(search, index)]; [Eq] means
    unresolved with [off] units known to agree.  Definite equality is
    only ever established by dereferencing the record key.

    Correctness requires the indexed key set to be prefix-free when key
    lengths vary (see {!module:Partial_key}); the implementation claims
    [Lt]/[Gt] only on a definite stored-unit mismatch and degrades to
    [Eq] (forcing a dereference) in every boundary case. *)

type resolution =
  | Resolved of Pk_keys.Key.cmp * int
  | Need_units
      (** The difference offsets coincide; the stored value units must
          be consulted ([pk_off = off], steps 7-14 of Fig. 3). *)

val resolve_by_offset :
  rel:Pk_keys.Key.cmp -> off:int -> pk_off:int -> resolution
(** Offset-only resolution: Theorem 3.1 (steps 1-6 of Fig. 3) for
    [rel = Lt/Gt], Appendix A cases 1-2 for [rel = Eq].  Never touches
    key value bits — this is the no-allocation fast path. *)

val resolve_by_units :
  Partial_key.granularity ->
  search:Pk_keys.Key.t ->
  rel:Pk_keys.Key.cmp ->
  off:int ->
  pk_len:int ->
  pk_bits:bytes ->
  Pk_keys.Key.cmp * int
(** Value resolution for the [pk_off = off] case.  [pk_bits] are the
    stored units of the index key (packed bits, or raw bytes whose
    first byte is the difference byte).  For bit granularity the
    implied difference bit is reconstructed from [rel] per Fig. 3
    steps 8-11 / Appendix A case 3. *)

val compare_partkey :
  Partial_key.granularity ->
  search:Pk_keys.Key.t ->
  pk:Partial_key.t ->
  rel:Pk_keys.Key.cmp ->
  off:int ->
  Pk_keys.Key.cmp * int
(** The full procedure: offset resolution, falling back to stored
    units.  Convenience composition of the two functions above. *)
