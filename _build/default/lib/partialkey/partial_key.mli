(** Fixed-size partial keys (§3 of the paper).

    A key is represented in a partial-key tree by (1) a pointer to the
    data record holding the full key, (2) the offset of the first unit
    (bit or byte) at which the key differs from its {e base key} — the
    key visited immediately before it — and (3) up to [l] units of the
    key's value around that offset.

    Two offset granularities are supported (§5.2):

    - {b Bit}: [pk_off] is the first differing bit; [pk_bits] holds the
      [l_bits] bits {e following} that bit (packed, left-aligned).  The
      difference bit itself is never stored — its value is implied by
      which side of the base key the key lies on.
    - {b Byte}: [pk_off] is the first differing byte; [pk_bits] holds
      [l_bytes] bytes {e starting at} that byte (the whole difference
      byte is stored because the position of the difference within it
      is not recorded).

    Keys indexed by partial-key trees must form a prefix-free set when
    lengths vary (guaranteed by fixed-length keys, or by the
    terminated encoding of {!val:Pk_keys.Key.encode_segments}); the
    comparison lemmas treat "end of key" as a unit smaller than any
    byte, which prefix-freedom makes unobservable. *)

type granularity = Bit | Byte

val pp_granularity : Format.formatter -> granularity -> unit

type t = {
  pk_off : int;   (** Offset of the difference unit w.r.t. the base key. *)
  pk_len : int;   (** Number of units stored in [pk_bits] (<= l). *)
  pk_bits : bytes;
      (** Bit granularity: packed bit string of [pk_len] bits.
          Byte granularity: [pk_len] raw bytes. *)
}

val units_of_key : granularity -> Pk_keys.Key.t -> int
(** Length of a key in units ([8*length] bits or [length] bytes). *)

val l_units : granularity -> l_bytes:int -> int
(** The parameter [l] expressed in units: [8*l_bytes] bits, or
    [l_bytes] bytes. *)

val diff : granularity -> Pk_keys.Key.t -> Pk_keys.Key.t -> Pk_keys.Key.cmp * int
(** [(c, d)] where [c] compares the first key to the second and [d] is
    the offset of the first differing unit ([= units] when equal). *)

val encode : granularity -> l_bytes:int -> base:Pk_keys.Key.t -> key:Pk_keys.Key.t -> t
(** Partial key for [key] relative to [base].  [key <> base]
    required (keys are unique). *)

val encode_initial : granularity -> l_bytes:int -> key:Pk_keys.Key.t -> t
(** Partial key for a key with no real base (the leftmost key of a
    root): encoded against the virtual all-zero key, matching
    {!val:initial_state}. *)

val initial_state : granularity -> Pk_keys.Key.t -> Pk_keys.Key.cmp * int
(** Search state before the first comparison: [(Gt, d)] with [d] the
    search key's difference from the virtual all-zero key (its first
    nonzero unit), or [(Eq, units)] for an all-zero search key. *)

val reconstructed_prefix_units : granularity -> t -> int
(** Units of the key derivable from this partial key given its base:
    [pk_off + pk_len] for byte granularity, [pk_off + 1 + pk_len] for
    bit granularity (the implied difference bit) — used by
    space/analysis reporting. *)
