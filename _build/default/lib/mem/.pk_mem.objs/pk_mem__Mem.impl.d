lib/mem/mem.ml: Bytes Char Fun Pk_arena Pk_cachesim
