lib/mem/mem.mli: Pk_cachesim
