lib/util/stats_acc.ml: Array Float
