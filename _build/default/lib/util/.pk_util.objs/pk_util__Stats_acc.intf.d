lib/util/stats_acc.mli:
