lib/util/scatter.mli:
