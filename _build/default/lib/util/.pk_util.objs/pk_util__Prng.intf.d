lib/util/prng.mli:
