lib/util/tables.mli:
