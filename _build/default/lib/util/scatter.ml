type series = { label : string; marker : char; points : (float * float) list }

let render ?(width = 64) ?(height = 20) ~x_label ~y_label series =
  let all = List.concat_map (fun s -> s.points) series in
  let buf = Buffer.create 2048 in
  (match all with
  | [] -> Buffer.add_string buf "(no data)\n"
  | _ ->
      let xs = List.map fst all and ys = List.map snd all in
      let fold f = function [] -> 0.0 | h :: t -> List.fold_left f h t in
      let x0 = fold Float.min xs and x1 = fold Float.max xs in
      let y0 = fold Float.min ys and y1 = fold Float.max ys in
      let xr = if x1 > x0 then x1 -. x0 else 1.0 in
      let yr = if y1 > y0 then y1 -. y0 else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun s ->
          List.iter
            (fun (x, y) ->
              let cx = int_of_float ((x -. x0) /. xr *. float_of_int (width - 1)) in
              let cy = int_of_float ((y -. y0) /. yr *. float_of_int (height - 1)) in
              (* y grows upward: row 0 is the top of the plot. *)
              grid.(height - 1 - cy).(cx) <- s.marker)
            s.points)
        series;
      Buffer.add_string buf (Printf.sprintf "%s (top %.2f, bottom %.2f)\n" y_label y1 y0);
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf "  +";
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "   %s: %.2f .. %.2f\n" x_label x0 x1);
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "   %c = %s\n" s.marker s.label))
        series);
  Buffer.contents buf
