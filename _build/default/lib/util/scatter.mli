(** Minimal ASCII scatter plots, for rendering the paper's figures in
    terminal output.

    Each series has a one-character marker; points from later series
    overwrite earlier ones on collisions.  Axes are linear and
    annotated with their ranges. *)

type series = {
  label : string;
  marker : char;
  points : (float * float) list;  (** (x, y) *)
}

val render :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** [render ~x_label ~y_label series] draws a [width] x [height]
    character grid (defaults 64 x 20) with a legend.  Empty series
    lists or all-equal coordinates degrade gracefully. *)
