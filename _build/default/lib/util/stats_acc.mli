(** Streaming statistics accumulator.

    Collects samples one at a time and reports count, mean, standard
    deviation, min, max and approximate percentiles.  Used by the
    benchmark harness to summarise per-operation measurements. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
val mean : t -> float
val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 for n < 2. *)

val min : t -> float
val max : t -> float
(** [min]/[max] raise [Invalid_argument] when no sample was added. *)

val total : t -> float
(** Sum of all samples. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; exact (keeps all samples).
    Raises [Invalid_argument] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators into a fresh one. *)
