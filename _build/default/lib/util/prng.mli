(** Deterministic pseudo-random number generation.

    A small, fast splitmix64 generator.  Every experiment in this
    repository derives its randomness from an explicit [Prng.t] seeded
    with a constant, so runs are reproducible across machines and OCaml
    versions (the stdlib [Random] algorithm may change between
    releases). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds yield
    independent streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Uniform coin flip. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing
    [t].  Used to give each experiment phase its own stream. *)
