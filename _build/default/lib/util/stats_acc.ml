type t = {
  mutable samples : float array;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable sorted : bool;
}

let create () =
  { samples = Array.make 64 0.0; n = 0; sum = 0.0; sumsq = 0.0; sorted = true }

let add t x =
  if t.n = Array.length t.samples then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  t.sorted <- false

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    if var < 0.0 then 0.0 else sqrt var

let ensure_nonempty t name =
  if t.n = 0 then invalid_arg ("Stats_acc." ^ name ^ ": empty")

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.n in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.n;
    t.sorted <- true
  end

let min t =
  ensure_nonempty t "min";
  ensure_sorted t;
  t.samples.(0)

let max t =
  ensure_nonempty t "max";
  ensure_sorted t;
  t.samples.(t.n - 1)

let percentile t p =
  ensure_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats_acc.percentile: out of range";
  ensure_sorted t;
  (* Linear interpolation between closest ranks. *)
  let rank = p /. 100.0 *. float_of_int (t.n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then t.samples.(lo)
  else
    let w = rank -. float_of_int lo in
    (t.samples.(lo) *. (1.0 -. w)) +. (t.samples.(hi) *. w)

let merge a b =
  let t = create () in
  for i = 0 to a.n - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.n - 1 do
    add t b.samples.(i)
  done;
  t
