(** Aligned text tables and CSV rendering for experiment reports. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given column headers and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a data row.  Raises [Invalid_argument] if the number of
    cells differs from the number of columns. *)

val add_separator : t -> unit
(** Append a horizontal rule between data rows. *)

val render : t -> string
(** Render with box-drawing-free ASCII art, columns padded to fit. *)

val render_csv : t -> string
(** Render as CSV (header row first, minimal quoting). *)

val print : ?oc:out_channel -> t -> unit
(** [print t] writes [render t] followed by a newline to [oc]
    (default [stdout]). *)

(** Formatting helpers used throughout the reports. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float, default 2 decimals. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. ["1_500_000"] -> ["1,500,000"]. *)

val fmt_bytes : int -> string
(** Human-readable byte count, e.g. ["1.5 MiB"]. *)
