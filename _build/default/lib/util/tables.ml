type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  ncols : int;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  {
    headers = List.map fst columns;
    aligns = List.map snd columns;
    ncols = List.length columns;
    rows = [];
  }

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg
      (Printf.sprintf "Tables.add_row: %d cells for %d columns"
         (List.length cells) t.ncols);
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let data_rows t = List.rev t.rows

let column_widths t =
  let widths = Array.of_list (List.map String.length t.headers) in
  let widen cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  List.iter (function Cells c -> widen c | Separator -> ()) (data_rows t);
  widths

let pad align width s =
  let fill = width - String.length s in
  if fill <= 0 then s
  else
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  rule ();
  List.iter (function Cells c -> emit c | Separator -> rule ()) (data_rows t);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv t =
  let buf = Buffer.create 1024 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter (function Cells c -> emit c | Separator -> ()) (data_rows t);
  Buffer.contents buf

let print ?(oc = stdout) t =
  output_string oc (render t);
  output_char oc '\n'

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (f /. 1024.)
  else if n < 1024 * 1024 * 1024 then Printf.sprintf "%.1f MiB" (f /. (1024. *. 1024.))
  else Printf.sprintf "%.2f GiB" (f /. (1024. *. 1024. *. 1024.))
