lib/experiments/exp_ablations.ml: Array Bench_common Cachesim Experiment Float Gc Hashtbl Hybrid Index Layout List Machine Partial_key Pk_core Pk_mem Printf String Tables Unix Workload
