lib/experiments/exp_tables.ml: Array Bench_common Cachesim Experiment Float Keygen List Machine Pk_util Tables
