lib/experiments/exp_figures.ml: Bench_common Experiment Float Hashtbl Index Layout List Partial_key Pk_util Printf String Tables Workload
