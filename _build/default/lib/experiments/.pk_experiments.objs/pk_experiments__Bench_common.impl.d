lib/experiments/bench_common.ml: Array Filename List Pk_cachesim Pk_core Pk_harness Pk_keys Pk_mem Pk_partialkey Pk_util Pk_workload Printf Sys Unix
