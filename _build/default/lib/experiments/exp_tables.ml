(* T2 — Table 2: memory-hierarchy latencies, configured and observed.

   The observed column replays a random pointer-chase over working sets
   sized to hit each level of the hierarchy and reports the average
   simulated access latency, which must come out at the configured
   load-to-use latency of that level. *)

open Bench_common
module Prng = Pk_util.Prng

let chase sim ~block ~set_bytes ~accesses =
  let n = max 1 (set_bytes / block) in
  let order = Array.init n (fun i -> i * block) in
  Keygen.shuffle ~rng:(Prng.create 7L) order;
  (* Warm one full pass, then measure. *)
  Array.iter (fun a -> Cachesim.touch sim ~addr:a ~len:1) order;
  let before = Cachesim.snapshot sim in
  for i = 0 to accesses - 1 do
    Cachesim.touch sim ~addr:order.(i mod n) ~len:1
  done;
  let after = Cachesim.snapshot sim in
  let d = Cachesim.diff ~before ~after in
  d.Cachesim.sim_ns /. float_of_int d.Cachesim.total_accesses

let run () =
  let t =
    Tables.create
      ~columns:
        [
          ("System", Tables.Left);
          ("Cycle ns", Tables.Right);
          ("L1 size", Tables.Right);
          ("L1 blk", Tables.Right);
          ("L1 ns", Tables.Right);
          ("L2 size", Tables.Right);
          ("L2 blk", Tables.Right);
          ("L2 ns", Tables.Right);
          ("DRAM ns", Tables.Right);
          ("obs L1", Tables.Right);
          ("obs L2", Tables.Right);
          ("obs DRAM", Tables.Right);
        ]
  in
  let ok = ref true in
  List.iter
    (fun (m : Machine.t) ->
      let sim set_bytes =
        let s = Cachesim.create (Machine.to_config m) in
        chase s ~block:m.Machine.l2.Cachesim.block_bytes ~set_bytes ~accesses:200_000
      in
      (* Working sets: half of L1; half of L2 (always above L1); 16x
         L2. *)
      let obs_l1 = sim (m.Machine.l1.Cachesim.size_bytes / 2) in
      let obs_l2 =
        let s = Cachesim.create (Machine.to_config m) in
        (* between L1 and L2 *)
        chase s ~block:m.Machine.l2.Cachesim.block_bytes
          ~set_bytes:(m.Machine.l2.Cachesim.size_bytes / 2)
          ~accesses:200_000
      in
      let obs_dram = sim (16 * m.Machine.l2.Cachesim.size_bytes) in
      let near a b = Float.abs (a -. b) /. b < 0.25 in
      if
        not
          (near obs_l1 m.Machine.l1.Cachesim.latency_ns
          && near obs_dram m.Machine.dram_ns)
      then ok := false;
      Tables.add_row t
        [
          m.Machine.machine_name;
          fmt_f ~d:1 m.Machine.cpu_cycle_ns;
          Tables.fmt_bytes m.Machine.l1.Cachesim.size_bytes;
          string_of_int m.Machine.l1.Cachesim.block_bytes;
          fmt_f ~d:0 m.Machine.l1.Cachesim.latency_ns;
          Tables.fmt_bytes m.Machine.l2.Cachesim.size_bytes;
          string_of_int m.Machine.l2.Cachesim.block_bytes;
          fmt_f ~d:0 m.Machine.l2.Cachesim.latency_ns;
          fmt_f ~d:0 m.Machine.dram_ns;
          fmt_f ~d:1 obs_l1;
          fmt_f ~d:1 obs_l2;
          fmt_f ~d:1 obs_dram;
        ])
    Machine.all;
  print_table ~name:"t2" t;
  shape_check "observed latencies match configured hierarchy" !ok

let register () =
  Experiment.register
    {
      Experiment.id = "t2";
      title = "Latency of cache vs. memory (simulated hierarchy)";
      paper_ref = "Table 2";
      run;
    }
