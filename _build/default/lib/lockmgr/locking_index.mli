(** Next-key locking over an index (Mohan's ARIES/KVL [21], the
    protocol §5.2 says the paper's T-tree system supported).

    Wraps any {!type:Pk_core.Index.t} with the key-value locking
    protocol that makes interleaved transactions serializable,
    including phantom prevention:

    - a {b lookup} S-locks the key when present, or the {e next} key
      (possibly the end-of-index sentinel) when absent — so a reader of
      a gap blocks writers into that gap;
    - an {b insert} X-locks the next key (guarding the gap it splits)
      and then the new key itself;
    - a {b delete} X-locks the key and its next key (the gap the
      deletion widens);
    - a {b range scan} S-locks every key it returns plus the first key
      beyond the range.

    Operations return [`Blocked] instead of suspending; the caller
    retries after the conflicting transaction finishes, or aborts on
    [`Deadlock].  Locks are held to transaction end (strict two-phase
    locking: commit or abort via {!val:commit} / {!val:abort}). *)

type t

val wrap : Lock_manager.t -> Pk_core.Index.t -> t
val index : t -> Pk_core.Index.t

type 'a result = [ `Ok of 'a | `Blocked of int list | `Deadlock ]

val begin_txn : t -> Lock_manager.txn

val lookup : t -> Lock_manager.txn -> Pk_keys.Key.t -> int option result

val insert : t -> Lock_manager.txn -> Pk_keys.Key.t -> rid:int -> bool result

val delete : t -> Lock_manager.txn -> Pk_keys.Key.t -> bool result

val range :
  t ->
  Lock_manager.txn ->
  lo:Pk_keys.Key.t ->
  hi:Pk_keys.Key.t ->
  (Pk_keys.Key.t * int) list result
(** Returns the matching pairs (ascending) once all their locks are
    granted. *)

val commit : t -> Lock_manager.txn -> unit
val abort : t -> Lock_manager.txn -> unit
(** [abort] releases locks only; the caller owns undo of any index
    mutations it performed (the tests pair every mutation with its
    inverse). *)
