(** Key-value lock manager in the ARIES/KVL mould (Mohan [21], cited by
    §5.2: the paper's T-tree implementation came from a system with
    concurrency control and next-key locking, though the features were
    not exercised in its benchmarks).

    The manager arbitrates logical locks on index keys (plus an
    end-of-index sentinel) among interleaved transactions.  It is a
    {e scheduler}, not a thread primitive: [acquire] never suspends —
    it grants, reports the conflict, or reports that waiting would
    deadlock — so it composes with any execution model, including the
    single-threaded transaction interleavings the tests replay.

    Lock upgrades are supported: a transaction re-requesting a key gets
    the least upper bound of its held and requested modes, checked
    against the {e other} holders only. *)

type mode = IS | IX | S | SIX | X
(** The standard multi-granularity modes.  For index keys, S and X do
    the real work; intention modes arbitrate key-range vs whole-index
    operations. *)

val compatible : mode -> mode -> bool
(** The classic compatibility matrix. *)

val sup : mode -> mode -> mode
(** Least upper bound in the mode lattice (e.g. [sup S IX = SIX]). *)

val pp_mode : Format.formatter -> mode -> unit

type lockable =
  | Key of Pk_keys.Key.t  (** An index key. *)
  | End_of_index          (** The +infinity sentinel next-key target. *)

type t
type txn

val create : unit -> t
val begin_txn : t -> txn
val txn_id : txn -> int
val active_txns : t -> int

type outcome =
  | Granted
  | Would_block of int list
      (** Transaction ids currently holding incompatible locks.  The
          caller should retry after one of them finishes (the manager
          records the wait for deadlock detection until this
          transaction's next acquire, release, or {!val:cancel_wait}). *)
  | Deadlock
      (** Waiting would close a cycle in the waits-for graph; the
          caller should abort this transaction. *)

val acquire : t -> txn -> lockable -> mode -> outcome

val cancel_wait : t -> txn -> unit
(** Withdraw a recorded wait (e.g. the caller decided to abort or to do
    something else instead of retrying). *)

val held : t -> txn -> (lockable * mode) list
val holders : t -> lockable -> (int * mode) list

val release_all : t -> txn -> unit
(** Commit/abort: drop every lock and wait of the transaction.  The
    transaction handle must not be used afterwards. *)
