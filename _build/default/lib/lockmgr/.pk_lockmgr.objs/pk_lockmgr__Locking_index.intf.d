lib/lockmgr/locking_index.mli: Lock_manager Pk_core Pk_keys
