lib/lockmgr/lock_manager.mli: Format Pk_keys
