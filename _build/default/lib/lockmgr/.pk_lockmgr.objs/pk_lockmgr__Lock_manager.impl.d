lib/lockmgr/lock_manager.ml: Format Hashtbl List Pk_keys
