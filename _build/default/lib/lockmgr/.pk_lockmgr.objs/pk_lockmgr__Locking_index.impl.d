lib/lockmgr/locking_index.ml: List Lock_manager Pk_core Pk_keys Seq
