(* Quickstart: build a pkB-tree over a record heap, look keys up,
   scan a range, delete, and inspect the cache behaviour of a lookup.

   Run with:  dune exec examples/quickstart.exe *)

module Cachesim = Pk_cachesim.Cachesim
module Machine = Pk_cachesim.Machine
module Mem = Pk_mem.Mem
module Key = Pk_keys.Key
module Record_store = Pk_records.Record_store
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Partial_key = Pk_partialkey.Partial_key

let () =
  (* 1. A memory system: arenas + a simulated Sun Ultra 30 hierarchy
     (the paper's machine).  The simulator only participates when
     tracing is switched on. *)
  let cache = Cachesim.create (Machine.to_config Machine.ultra30) in
  let mem = Mem.create ~cache () in

  (* 2. A record heap: the authoritative storage for keys + payloads;
     every record starts on its own 64-byte cache line. *)
  let records = Record_store.create mem in

  (* 3. A pkB-tree: B-tree nodes of 3 L2 blocks whose entries hold a
     record pointer plus a fixed-size partial key (byte-granularity
     offsets, l = 2 bytes — the paper's preferred configuration). *)
  let ix =
    Index.make Index.B_tree
      (Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 })
      mem records
  in
  Printf.printf "created index: %s\n" ix.Index.tag;

  (* 4. Insert some product codes. *)
  let products =
    [
      ("GADGET-00451", "anodised widget, blue");
      ("GADGET-00452", "anodised widget, red");
      ("GIZMO-31415", "self-sealing stem bolt");
      ("SPROCKET-27182", "left-handed sprocket");
      ("WIDGET-16180", "golden-ratio widget");
    ]
  in
  List.iter
    (fun (code, description) ->
      let key = Key.of_string code in
      let rid = Record_store.insert records ~key ~payload:(Bytes.of_string description) in
      assert (ix.Index.insert key ~rid))
    products;
  Printf.printf "inserted %d products (height %d, %d nodes, %s of index)\n"
    (ix.Index.count ()) (ix.Index.height ()) (ix.Index.node_count ())
    (Pk_util.Tables.fmt_bytes (ix.Index.space_bytes ()));

  (* 5. Point lookup: the index returns the record address; the record
     store returns the payload. *)
  (match ix.Index.lookup (Key.of_string "GIZMO-31415") with
  | Some rid ->
      Printf.printf "GIZMO-31415 -> %s\n" (Bytes.to_string (Record_store.read_payload records rid))
  | None -> print_endline "GIZMO-31415 not found?!");

  (* 6. Range scan: everything in the GADGET family. *)
  print_endline "range GADGET-00000 .. GADGET-99999:";
  ix.Index.range ~lo:(Key.of_string "GADGET-00000") ~hi:(Key.of_string "GADGET-99999")
    (fun ~key ~rid ->
      Printf.printf "  %s = %s\n" (Key.to_string key)
        (Bytes.to_string (Record_store.read_payload records rid)));

  (* 7. Delete. *)
  assert (ix.Index.delete (Key.of_string "GADGET-00452"));
  assert (ix.Index.lookup (Key.of_string "GADGET-00452") = None);
  Printf.printf "after delete: %d products\n" (ix.Index.count ());

  (* 8. Cache behaviour of one lookup, measured on the simulated
     hierarchy: enable tracing, look up, read the counters. *)
  Mem.set_tracing mem true;
  Cachesim.flush cache;
  Cachesim.reset_stats cache;
  ignore (ix.Index.lookup (Key.of_string "WIDGET-16180"));
  Mem.set_tracing mem false;
  let snap = Cachesim.snapshot cache in
  Printf.printf "one cold lookup: %d L2 misses, %.0f ns of simulated memory time\n"
    (Cachesim.misses snap ~level:"L2")
    snap.Cachesim.sim_ns;

  (* 9. The structural invariants (ordering, balance, every stored
     partial key re-derivable from record keys) can be checked at any
     point. *)
  ix.Index.validate ();
  print_endline "validate: all invariants hold"
