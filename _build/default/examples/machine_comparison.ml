(* One index, four memory hierarchies.

   The same pkB-tree lookup trace is replayed against each machine of
   the paper's Table 2.  The miss *counts* barely move (same geometry
   up to block size), but the simulated time tracks each machine's
   latencies — the paper's argument that partial-key trees get
   relatively better as the CPU/memory gap widens.

   Run with:  dune exec examples/machine_comparison.exe *)

module Tables = Pk_util.Tables
module Cachesim = Pk_cachesim.Cachesim
module Machine = Pk_cachesim.Machine
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Partial_key = Pk_partialkey.Partial_key
module Workload = Pk_workload.Workload

let () =
  let n = 80_000 and key_len = 20 in
  Printf.printf "pkB-tree, %d keys of %d bytes, same lookups on each machine\n\n" n key_len;
  let t =
    Tables.create
      ~columns:
        [
          ("machine", Tables.Left);
          ("L2 size", Tables.Right);
          ("L2 miss/op", Tables.Right);
          ("sim us/op", Tables.Right);
          ("us/op at 10x DRAM gap", Tables.Right);
        ]
  in
  List.iter
    (fun (m : Machine.t) ->
      let run machine =
        let env = Workload.make_env ~machine () in
        let ds = Workload.make_dataset env ~key_len ~alphabet:220 ~n () in
        let ix =
          Index.make Index.B_tree
            (Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 })
            env.Workload.mem env.Workload.records
        in
        Workload.load ds ix;
        let warm = Workload.probes ds ~seed:11 ~n:3000 () in
        let all = Workload.probes ds ~seed:12 ~n:11000 () in
        let probes = Array.sub all 3000 8000 in
        Workload.measure_cache env ix ~warm ~probes
      in
      let cs = run m in
      (* The paper's future-trend argument: scale the DRAM latency up
         10x while the caches stay put. *)
      let widened = { m with Machine.dram_ns = m.Machine.dram_ns *. 10.0 } in
      let cs10 = run widened in
      Tables.add_row t
        [
          m.Machine.machine_name;
          Tables.fmt_bytes m.Machine.l2.Cachesim.size_bytes;
          Tables.fmt_float cs.Workload.l2_per_op;
          Tables.fmt_float (cs.Workload.sim_ns_per_op /. 1000.0);
          Tables.fmt_float (cs10.Workload.sim_ns_per_op /. 1000.0);
        ])
    Machine.all;
  Tables.print t
