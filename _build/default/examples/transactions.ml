(* Interleaved transactions over a pkB-tree with next-key locking —
   the concurrency-control protocol of the system the paper's T-tree
   code came from (§5.2; ARIES/KVL [21]).

   Run with:  dune exec examples/transactions.exe *)

module Key = Pk_keys.Key
module Index = Pk_core.Index
module Layout = Pk_core.Layout
module Record_store = Pk_records.Record_store
module Partial_key = Pk_partialkey.Partial_key
module Workload = Pk_workload.Workload
module L = Pk_lockmgr.Lock_manager
module LI = Pk_lockmgr.Locking_index

let key = Key.of_string

let show what = function
  | `Ok _ -> Printf.printf "  %-52s granted\n" what
  | `Blocked ids ->
      Printf.printf "  %-52s BLOCKED by txn %s\n" what
        (String.concat "," (List.map string_of_int ids))
  | `Deadlock -> Printf.printf "  %-52s DEADLOCK - abort\n" what

let () =
  let env = Workload.make_env () in
  let records = env.Workload.records in
  let ix =
    Index.make Index.B_tree
      (Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 })
      env.Workload.mem records
  in
  let li = LI.wrap (L.create ()) ix in
  let put s =
    let k = key s in
    let rid = Record_store.insert records ~key:k ~payload:(Bytes.of_string ("balance of " ^ s)) in
    assert (ix.Pk_core.Index.insert k ~rid)
  in
  List.iter put [ "acct-0100"; "acct-0200"; "acct-0300"; "acct-0500" ];
  print_endline "accounts: 0100 0200 0300 0500\n";

  (* Scene 1: shared readers, blocked writer. *)
  print_endline "T1 and T2 read acct-0200; T2 then tries to delete it:";
  let t1 = LI.begin_txn li and t2 = LI.begin_txn li in
  show "T1 lookup acct-0200" (LI.lookup li t1 (key "acct-0200"));
  show "T2 lookup acct-0200" (LI.lookup li t2 (key "acct-0200"));
  show "T2 delete acct-0200" (LI.delete li t2 (key "acct-0200"));
  LI.commit li t1;
  show "T2 delete acct-0200 (after T1 commit)" (LI.delete li t2 (key "acct-0200"));
  LI.abort li t2;
  (* T2 aborted: undo its delete by reinserting. *)
  put "acct-0200";
  print_newline ();

  (* Scene 2: phantom prevention.  T3 scans a range; T4 cannot insert
     into it until T3 finishes. *)
  print_endline "T3 scans [acct-0100, acct-0300]; T4 inserts acct-0250 into the gap:";
  let t3 = LI.begin_txn li and t4 = LI.begin_txn li in
  (match LI.range li t3 ~lo:(key "acct-0100") ~hi:(key "acct-0300") with
  | `Ok items -> Printf.printf "  T3 scan found %d accounts\n" (List.length items)
  | _ -> assert false);
  let rid = Record_store.insert records ~key:(key "acct-0250") ~payload:Bytes.empty in
  show "T4 insert acct-0250" (LI.insert li t4 (key "acct-0250") ~rid);
  LI.commit li t3;
  show "T4 insert acct-0250 (after T3 commit)" (LI.insert li t4 (key "acct-0250") ~rid);
  LI.commit li t4;
  print_newline ();

  (* Scene 3: deadlock. *)
  print_endline "T5 and T6 update accounts in opposite orders:";
  let t5 = LI.begin_txn li and t6 = LI.begin_txn li in
  show "T5 lookup acct-0100" (LI.lookup li t5 (key "acct-0100"));
  show "T6 lookup acct-0500" (LI.lookup li t6 (key "acct-0500"));
  show "T5 delete acct-0500" (LI.delete li t5 (key "acct-0500"));
  show "T6 delete acct-0100" (LI.delete li t6 (key "acct-0100"));
  print_endline "  (T6 aborts; T5 retries and proceeds)";
  LI.abort li t6;
  (match LI.delete li t5 (key "acct-0500") with
  | `Ok true -> LI.commit li t5
  | _ -> assert false);
  Printf.printf "\nfinal accounts: %d, index valid: %b\n" (ix.Pk_core.Index.count ())
    (try ix.Pk_core.Index.validate (); true with _ -> false)
