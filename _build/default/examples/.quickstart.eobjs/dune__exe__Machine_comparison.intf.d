examples/machine_comparison.mli:
