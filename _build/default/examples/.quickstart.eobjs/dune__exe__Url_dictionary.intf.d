examples/url_dictionary.mli:
