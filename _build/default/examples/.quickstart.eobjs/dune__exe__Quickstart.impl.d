examples/quickstart.ml: Bytes List Pk_cachesim Pk_core Pk_keys Pk_mem Pk_partialkey Pk_records Pk_util Printf
