examples/telecom_sessions.ml: Array Bytes Char Hashtbl List Pk_core Pk_keys Pk_partialkey Pk_records Pk_util Pk_workload Printf Unix
