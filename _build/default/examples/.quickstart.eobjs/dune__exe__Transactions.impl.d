examples/transactions.ml: Bytes List Pk_core Pk_keys Pk_lockmgr Pk_partialkey Pk_records Pk_workload Printf String
