examples/quickstart.mli:
