examples/url_dictionary.ml: Array Bytes Char Hashtbl List Pk_cachesim Pk_core Pk_keys Pk_mem Pk_partialkey Pk_records Pk_util Pk_workload Printf String
