examples/machine_comparison.ml: Array List Pk_cachesim Pk_core Pk_partialkey Pk_util Pk_workload Printf
