examples/transactions.mli:
