examples/telecom_sessions.mli:
