(* URL dictionary — long, low-entropy, variable-length keys.

   URLs share long prefixes ("https://www.", per-site paths), which is
   exactly the regime the paper's partial keys exploit: the difference
   offset skips the shared prefix and l = 2 stored bytes almost always
   settle the comparison, so lookups rarely touch the records at all.
   Direct storage cannot even index variable-length keys in fixed
   slots without padding to the maximum length.

   Run with:  dune exec examples/url_dictionary.exe *)

module Prng = Pk_util.Prng
module Tables = Pk_util.Tables
module Key = Pk_keys.Key
module Cachesim = Pk_cachesim.Cachesim
module Mem = Pk_mem.Mem
module Record_store = Pk_records.Record_store
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Partial_key = Pk_partialkey.Partial_key
module Workload = Pk_workload.Workload

let sites =
  [|
    "https://www.example.com/products/";
    "https://www.example.com/support/articles/";
    "https://docs.example.org/reference/api/v2/";
    "https://archive.example.net/2001/sigmod/";
    "https://mirror.example.edu/pub/software/ocaml/";
  |]

let make_urls ~rng n =
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n Bytes.empty in
  let slug () =
    let len = 6 + Prng.int rng 18 in
    String.init len (fun _ ->
        let c = Prng.int rng 38 in
        if c < 26 then Char.chr (97 + c) else if c < 36 then Char.chr (48 + c - 26) else '-')
  in
  let i = ref 0 in
  while !i < n do
    let url = sites.(Prng.int rng (Array.length sites)) ^ slug () ^ "/" ^ slug () ^ ".html" in
    if not (Hashtbl.mem seen url) then begin
      Hashtbl.add seen url ();
      (* Terminated Var encoding keeps the indexed key set
         prefix-free, as partial-key trees require for
         variable-length keys. *)
      out.(!i) <- Key.encode_segments [ Key.Var (Bytes.of_string url) ];
      incr i
    end
  done;
  out

let () =
  let env = Workload.make_env () in
  let records = env.Workload.records in
  let rng = Prng.create 3L in
  let n = 60_000 in
  let urls = make_urls ~rng n in
  let mean_len =
    Array.fold_left (fun a k -> a + Bytes.length k) 0 urls * 100 / n
  in
  Printf.printf "%d unique URLs, mean key length %d.%02d bytes\n\n" n (mean_len / 100)
    (mean_len mod 100);

  let schemes =
    [
      ("pkB byte l=2", Index.B_tree, Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 });
      ("pkB byte l=4", Index.B_tree, Layout.Partial { granularity = Partial_key.Byte; l_bytes = 4 });
      ("pkT byte l=2", Index.T_tree, Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 });
      ("B-indirect", Index.B_tree, Layout.Indirect);
      ("T-indirect", Index.T_tree, Layout.Indirect);
    ]
  in
  let t =
    Tables.create
      ~columns:
        [
          ("index", Tables.Left);
          ("L2 miss/op", Tables.Right);
          ("deref/op", Tables.Right);
          ("wall ns/op", Tables.Right);
          ("index B/key", Tables.Right);
          ("height", Tables.Right);
        ]
  in
  List.iter
    (fun (name, structure, scheme) ->
      let ix = Index.make structure scheme env.Workload.mem records in
      Array.iter
        (fun key ->
          let rid = Record_store.insert records ~key ~payload:Bytes.empty in
          assert (ix.Index.insert key ~rid))
        urls;
      ix.Index.validate ();
      let probes = Array.init 8192 (fun i -> urls.((i * 6151) mod n)) in
      let warm = Array.init 3000 (fun i -> urls.((i * 4093) mod n)) in
      let cs = Workload.measure_cache env ix ~warm ~probes in
      let wall = Workload.wall_ns_per_op env ix ~probes in
      Tables.add_row t
        [
          name;
          Tables.fmt_float cs.Workload.l2_per_op;
          Tables.fmt_float ~decimals:2 cs.Workload.derefs_per_op;
          Tables.fmt_float ~decimals:0 wall;
          Tables.fmt_float ~decimals:1
            (float_of_int (ix.Index.space_bytes ()) /. float_of_int n);
          string_of_int (ix.Index.height ());
        ])
    schemes;
  Tables.print t;
  print_endline
    "Partial keys index these URLs at ~23 bytes/key regardless of key length\n\
     and resolve most comparisons from the stored bytes after the difference\n\
     offset; indirect schemes pay a record dereference per comparison.\n\
     Direct storage is not shown: fixed slots would need max-length padding."
