(* Telecom call-detail sessions — the workload class that motivated
   main-memory databases like DataBlitz (the paper's §1 and [2]).

   A session table is keyed by (subscriber number, start timestamp):
   a 16-byte composite key, well past the 12-20-byte crossover where
   the paper shows partial-key trees overtaking direct B-trees.  The
   example builds the same index under three schemes, runs an OLTP mix
   (new sessions, lookups, expiry deletions), and answers the classic
   per-subscriber range query.

   Run with:  dune exec examples/telecom_sessions.exe *)

module Prng = Pk_util.Prng
module Tables = Pk_util.Tables
module Key = Pk_keys.Key
module Record_store = Pk_records.Record_store
module Layout = Pk_core.Layout
module Index = Pk_core.Index
module Partial_key = Pk_partialkey.Partial_key
module Workload = Pk_workload.Workload

let n_subscribers = 5_000
let sessions_per_subscriber = 12

(* Composite key: subscriber E.164 number (8 bytes, zero-padded
   digits) then a big-endian timestamp (8 bytes).  Fixed-width
   segments concatenate directly and compare byte-wise, so the
   partial-key machinery applies unchanged. *)
let session_key ~subscriber ~ts =
  Key.encode_segments
    [
      Key.Fixed
        (Bytes.init 8 (fun i -> Char.chr ((subscriber lsr (8 * (7 - i))) land 0xff)));
      Key.Fixed (Bytes.init 8 (fun i -> Char.chr ((ts lsr (8 * (7 - i))) land 0xff)));
    ]

let () =
  let env = Workload.make_env () in
  let records = env.Workload.records in
  let rng = Prng.create 2026L in

  (* Generate the session population. *)
  let sessions =
    Array.init (n_subscribers * sessions_per_subscriber) (fun i ->
        let subscriber = 0x3930_0000 + (i / sessions_per_subscriber) in
        let ts = 1_700_000_000 + Prng.int rng 86_400_00 in
        (subscriber, ts))
  in
  (* Deduplicate (subscriber, ts) collisions by nudging timestamps. *)
  let seen = Hashtbl.create (Array.length sessions) in
  let sessions =
    Array.map
      (fun (s, ts) ->
        let rec fresh ts = if Hashtbl.mem seen (s, ts) then fresh (ts + 1) else ts in
        let ts = fresh ts in
        Hashtbl.add seen (s, ts) ();
        (s, ts))
      sessions
  in

  let schemes =
    [
      ("pkB (partial keys)", Index.B_tree,
       Layout.Partial { granularity = Partial_key.Byte; l_bytes = 2 });
      ("B-direct (inline keys)", Index.B_tree, Layout.Direct { key_len = 16 });
      ("T-indirect (Lehman-Carey)", Index.T_tree, Layout.Indirect);
    ]
  in

  let t =
    Tables.create
      ~columns:
        [
          ("index", Tables.Left);
          ("load ms", Tables.Right);
          ("lookup ns", Tables.Right);
          ("mixed-op ns", Tables.Right);
          ("index B/key", Tables.Right);
          ("height", Tables.Right);
        ]
  in
  let indexes =
    List.map
      (fun (name, structure, scheme) ->
        let ix = Index.make structure scheme env.Workload.mem records in
        let t0 = Unix.gettimeofday () in
        Array.iter
          (fun (s, ts) ->
            let key = session_key ~subscriber:s ~ts in
            let payload = Bytes.of_string (Printf.sprintf "cdr:%d:%d" s ts) in
            let rid = Record_store.insert records ~key ~payload in
            assert (ix.Index.insert key ~rid))
          sessions;
        let load_ms = (Unix.gettimeofday () -. t0) *. 1e3 in

        (* Point lookups of random live sessions. *)
        let probes =
          Array.init 20_000 (fun i ->
              let s, ts = sessions.((i * 7919) mod Array.length sessions) in
              session_key ~subscriber:s ~ts)
        in
        let t0 = Unix.gettimeofday () in
        Array.iter (fun k -> assert (ix.Index.lookup k <> None)) probes;
        let lookup_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (Array.length probes) in

        (* OLTP mix: 60% lookups, 20% new sessions, 20% expiries. *)
        let mix_rng = Prng.create 7L in
        let live = Array.map (fun st -> Some st) sessions in
        let ops = 30_000 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to ops do
          let i = Prng.int mix_rng (Array.length live) in
          let r = Prng.int mix_rng 100 in
          match live.(i) with
          | Some (s, ts) when r < 60 -> ignore (ix.Index.lookup (session_key ~subscriber:s ~ts))
          | Some (s, ts) when r >= 80 ->
              ignore (ix.Index.delete (session_key ~subscriber:s ~ts));
              live.(i) <- None
          | Some _ -> ()
          | None ->
              let s = 0x3930_0000 + Prng.int mix_rng n_subscribers in
              let ts = 1_800_000_000 + Prng.int mix_rng 1_000_000_000 in
              let key = session_key ~subscriber:s ~ts in
              let rid = Record_store.insert records ~key ~payload:Bytes.empty in
              if ix.Index.insert key ~rid then live.(i) <- Some (s, ts)
              else Record_store.delete records rid
        done;
        let mixed_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int ops in
        ix.Index.validate ();
        Tables.add_row t
          [
            name;
            Tables.fmt_float ~decimals:0 load_ms;
            Tables.fmt_float ~decimals:0 lookup_ns;
            Tables.fmt_float ~decimals:0 mixed_ns;
            Tables.fmt_float ~decimals:1
              (float_of_int (ix.Index.space_bytes ()) /. float_of_int (ix.Index.count ()));
            string_of_int (ix.Index.height ());
          ];
        (name, ix))
      schemes
  in
  Printf.printf "%d subscribers, %d sessions, 16-byte (number, timestamp) keys\n\n" n_subscribers
    (Array.length sessions);
  Tables.print t;

  (* Per-subscriber range query: all sessions of one number, via the
     natural composite-key prefix range. *)
  let _, pkb = List.hd indexes in
  let subscriber = 0x3930_0000 + 1234 in
  let lo = session_key ~subscriber ~ts:0 in
  let hi = session_key ~subscriber ~ts:max_int in
  let hits = ref 0 in
  pkb.Index.range ~lo ~hi (fun ~key:_ ~rid:_ -> incr hits);
  Printf.printf "\nsessions for subscriber %x via prefix range scan: %d\n" subscriber !hits
