bin/pkbench.ml: Arg Cmd Cmdliner List Option Pk_experiments Pk_harness Printf Term Unix
