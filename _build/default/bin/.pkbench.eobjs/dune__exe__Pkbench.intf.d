bin/pkbench.mli:
