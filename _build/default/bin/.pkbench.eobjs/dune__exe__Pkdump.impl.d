bin/pkdump.ml: Arg Array Cmd Cmdliner Pk_cachesim Pk_core Pk_keys Pk_partialkey Pk_records Pk_util Pk_workload Printf String Term Unix
