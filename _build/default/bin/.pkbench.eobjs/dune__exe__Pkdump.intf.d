bin/pkdump.mli:
